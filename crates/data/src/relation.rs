//! In-memory relations.
//!
//! A [`Relation`] is a row-major, flat array of [`Value`]s together with its
//! [`RelationSchema`]. LMFAO keeps relations sorted by their join attributes
//! so that a single scan can view them as a trie: grouped by the first join
//! attribute, then by the next within each group, and so on (see
//! [`crate::trie`]). This mirrors the factorized-database style scans the
//! paper relies on for the multi-output plans.

use crate::error::{DataError, Result};
use crate::hash::fx_hash_set;
use crate::schema::{AttrId, RelationSchema};
use crate::value::Value;

/// An in-memory relation: schema plus row-major tuple storage.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    data: Vec<Value>,
    arity: usize,
    /// Attribute positions this relation is currently sorted by (lexicographic
    /// prefix order); empty if unsorted.
    sorted_by: Vec<usize>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            data: Vec::new(),
            arity,
            sorted_by: Vec::new(),
        }
    }

    /// Creates a relation from rows, validating arity.
    pub fn from_rows(schema: RelationSchema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push_row(&row)?;
        }
        Ok(rel)
    }

    /// The schema of the relation.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Appends a tuple, validating its arity.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.arity,
                got: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.sorted_by.clear();
        Ok(())
    }

    /// Appends a tuple without arity validation (panics in debug builds on
    /// mismatch). Used by bulk loaders on the hot path.
    pub fn push_row_unchecked(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity);
        self.data.extend_from_slice(row);
        self.sorted_by.clear();
    }

    /// Reserves capacity for `additional` further tuples.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional * self.arity);
    }

    /// The `i`-th tuple.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// A single value.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.data[row * self.arity + col]
    }

    /// Iterates over all tuples.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.data.chunks_exact(self.arity.max(1))
    }

    /// Position of an attribute within this relation.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.schema.position(attr)
    }

    /// Sorts the relation lexicographically by the given column positions
    /// (remaining columns keep their relative order only within equal keys,
    /// which is all the trie scan needs).
    pub fn sort_by_positions(&mut self, positions: &[usize]) {
        if self.is_empty() || positions.is_empty() {
            self.sorted_by = positions.to_vec();
            return;
        }
        let arity = self.arity;
        let n = self.len();
        let mut indices: Vec<u32> = (0..n as u32).collect();
        let data = &self.data;
        indices.sort_unstable_by(|&a, &b| {
            let ra = &data[a as usize * arity..(a as usize + 1) * arity];
            let rb = &data[b as usize * arity..(b as usize + 1) * arity];
            for &p in positions {
                match ra[p].cmp(&rb[p]) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut new_data = Vec::with_capacity(self.data.len());
        for &i in &indices {
            new_data.extend_from_slice(&data[i as usize * arity..(i as usize + 1) * arity]);
        }
        self.data = new_data;
        self.sorted_by = positions.to_vec();
    }

    /// Sorts the relation by the given attributes (those present in the
    /// relation are used, in the given order).
    pub fn sort_by_attrs(&mut self, attrs: &[AttrId]) {
        let positions: Vec<usize> = attrs.iter().filter_map(|&a| self.position(a)).collect();
        self.sort_by_positions(&positions);
    }

    /// Column positions the relation is currently sorted by.
    pub fn sorted_by(&self) -> &[usize] {
        &self.sorted_by
    }

    /// Whether the relation is sorted by a prefix starting with `positions`.
    pub fn is_sorted_by(&self, positions: &[usize]) -> bool {
        self.sorted_by.len() >= positions.len() && self.sorted_by[..positions.len()] == *positions
    }

    /// Number of distinct values in a column.
    pub fn distinct_count(&self, col: usize) -> usize {
        let mut set = fx_hash_set();
        for i in 0..self.len() {
            set.insert(self.value(i, col));
        }
        set.len()
    }

    /// Distinct values of a column, in first-appearance order.
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        let mut seen = fx_hash_set();
        let mut out = Vec::new();
        for i in 0..self.len() {
            let v = self.value(i, col);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Approximate size of the relation payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Value>()
    }

    /// Minimum and maximum value of a column, if the relation is non-empty.
    pub fn min_max(&self, col: usize) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        let mut mn = self.value(0, col);
        let mut mx = mn;
        for i in 1..self.len() {
            let v = self.value(i, col);
            if v < mn {
                mn = v;
            }
            if v > mx {
                mx = v;
            }
        }
        Some((mn, mx))
    }

    /// Consumes the relation, returning its raw parts.
    pub fn into_parts(self) -> (RelationSchema, Vec<Value>) {
        (self.schema, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelationSchema};

    fn schema3(name: &str) -> RelationSchema {
        RelationSchema::new(name, vec![AttrId(0), AttrId(1), AttrId(2)])
    }

    fn sample() -> Relation {
        let rows = vec![
            vec![Value::Int(2), Value::Int(10), Value::Double(1.0)],
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)],
            vec![Value::Int(2), Value::Int(5), Value::Double(3.0)],
            vec![Value::Int(1), Value::Int(20), Value::Double(4.0)],
        ];
        Relation::from_rows(schema3("R"), rows).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.value(1, 1), Value::Int(20));
        assert_eq!(r.row(2)[2], Value::Double(3.0));
        assert_eq!(r.name(), "R");
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut r = Relation::new(schema3("R"));
        let err = r.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn sorting_by_positions() {
        let mut r = sample();
        r.sort_by_positions(&[0, 1]);
        let col0: Vec<i64> = (0..r.len()).map(|i| r.value(i, 0).as_i64()).collect();
        assert_eq!(col0, vec![1, 1, 2, 2]);
        // Within X0 = 2 the rows are ordered by X1 (5 then 10).
        assert_eq!(r.value(2, 1), Value::Int(5));
        assert_eq!(r.value(3, 1), Value::Int(10));
        assert!(r.is_sorted_by(&[0]));
        assert!(r.is_sorted_by(&[0, 1]));
        assert!(!r.is_sorted_by(&[1]));
    }

    #[test]
    fn sorting_by_attrs_filters_missing() {
        let mut r = sample();
        // AttrId(7) is not in the relation and must simply be ignored.
        r.sort_by_attrs(&[AttrId(7), AttrId(1)]);
        let col1: Vec<i64> = (0..r.len()).map(|i| r.value(i, 1).as_i64()).collect();
        assert_eq!(col1, vec![5, 10, 20, 20]);
    }

    #[test]
    fn distinct_counts_and_values() {
        let r = sample();
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 3);
        assert_eq!(r.distinct_count(2), 4);
        assert_eq!(
            r.distinct_values(0),
            vec![Value::Int(2), Value::Int(1)],
            "first-appearance order"
        );
    }

    #[test]
    fn min_max() {
        let r = sample();
        assert_eq!(r.min_max(1), Some((Value::Int(5), Value::Int(20))));
        let empty = Relation::new(schema3("E"));
        assert_eq!(empty.min_max(0), None);
    }

    #[test]
    fn rows_iteration_matches_len() {
        let r = sample();
        assert_eq!(r.rows().count(), r.len());
        assert_eq!(r.rows().next().unwrap()[0], Value::Int(2));
    }

    #[test]
    fn size_bytes_nonzero() {
        let r = sample();
        assert!(r.size_bytes() > 0);
        assert_eq!(r.size_bytes(), 12 * std::mem::size_of::<Value>());
    }

    #[test]
    fn mutation_invalidates_sortedness() {
        let mut r = sample();
        r.sort_by_positions(&[0]);
        assert!(r.is_sorted_by(&[0]));
        r.push_row(&[Value::Int(0), Value::Int(0), Value::Double(0.0)])
            .unwrap();
        assert!(!r.is_sorted_by(&[0]));
    }
}
