//! Typed values stored in relations.
//!
//! LMFAO relations are sorted in-memory arrays of tuples. Attribute values are
//! either continuous (integers / doubles) or categorical (dictionary-encoded
//! identifiers, see [`crate::dictionary::Dictionary`]). The engine frequently
//! needs to (a) order values to keep relations sorted by their join attributes,
//! (b) hash values to key computed views, and (c) interpret values numerically
//! when evaluating user-defined aggregate functions, so [`Value`] implements
//! total ordering, hashing and a lossless-as-possible `as_f64` conversion.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of an attribute in a relation schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer, e.g. counts, identifiers used as join keys.
    Int,
    /// 64-bit floating point, e.g. prices, temperatures.
    Double,
    /// Dictionary-encoded categorical value, e.g. city, item family.
    Categorical,
}

impl AttrType {
    /// Whether this attribute type is treated as a categorical feature by the
    /// ML applications (one-hot encoded, i.e. turned into a group-by attribute).
    pub fn is_categorical(self) -> bool {
        matches!(self, AttrType::Categorical)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Int => write!(f, "int"),
            AttrType::Double => write!(f, "double"),
            AttrType::Categorical => write!(f, "categorical"),
        }
    }
}

/// A single attribute value.
///
/// `Value` implements `Eq`, `Ord` and `Hash` with a *total* order (doubles are
/// compared via [`f64::total_cmp`]) so that tuples can be sorted and used as
/// keys of computed views.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// Signed integer value.
    Int(i64),
    /// Floating point value.
    Double(f64),
    /// Dictionary code of a categorical value.
    Cat(u32),
    /// Missing value. Sorts before every other value of the same variant class.
    Null,
}

impl Value {
    /// Numeric interpretation used by aggregate functions.
    ///
    /// Categorical codes are interpreted as their dictionary code, which is
    /// only meaningful for indicator functions; regression aggregates never
    /// use raw categorical codes directly (they become group-by attributes).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Double(d) => d,
            Value::Cat(c) => c as f64,
            Value::Null => 0.0,
        }
    }

    /// Integer interpretation, truncating doubles.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Double(d) => d as i64,
            Value::Cat(c) => c as i64,
            Value::Null => 0,
        }
    }

    /// Returns the categorical code, if this value is categorical.
    #[inline]
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(c),
            _ => None,
        }
    }

    /// True if this is [`Value::Null`].
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`AttrType`] this value naturally belongs to, if any.
    pub fn attr_type(self) -> Option<AttrType> {
        match self {
            Value::Int(_) => Some(AttrType::Int),
            Value::Double(_) => Some(AttrType::Double),
            Value::Cat(_) => Some(AttrType::Categorical),
            Value::Null => None,
        }
    }

    /// Rank used to order values of different variants deterministically.
    #[inline]
    fn variant_rank(self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 2,
            Value::Cat(_) => 3,
        }
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Cat(a), Value::Cat(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Cat(a), Value::Cat(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Double(d) => {
                state.write_u8(2);
                state.write_u64(d.to_bits());
            }
            Value::Cat(c) => {
                state.write_u8(3);
                state.write_u32(*c);
            }
            Value::Null => state.write_u8(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Cat(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering_and_equality() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Int(5));
        assert_ne!(Value::Int(5), Value::Int(6));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        let one = Value::Double(1.0);
        // total_cmp puts NaN after all normal numbers
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(one.cmp(&nan), Ordering::Less);
    }

    #[test]
    fn cross_variant_order_is_deterministic() {
        let mut vals = vec![
            Value::Cat(0),
            Value::Int(10),
            Value::Null,
            Value::Double(0.5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(10),
                Value::Double(0.5),
                Value::Cat(0)
            ]
        );
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(7).as_f64(), 7.0);
        assert_eq!(Value::Double(2.5).as_f64(), 2.5);
        assert_eq!(Value::Cat(3).as_f64(), 3.0);
        assert_eq!(Value::Null.as_f64(), 0.0);
    }

    #[test]
    fn as_i64_conversions() {
        assert_eq!(Value::Int(7).as_i64(), 7);
        assert_eq!(Value::Double(2.9).as_i64(), 2);
        assert_eq!(Value::Cat(3).as_i64(), 3);
        assert_eq!(Value::Null.as_i64(), 0);
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(hash_of(Value::Int(42)), hash_of(Value::Int(42)));
        assert_eq!(hash_of(Value::Double(1.5)), hash_of(Value::Double(1.5)));
        assert_ne!(hash_of(Value::Int(1)), hash_of(Value::Cat(1)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Cat(3).to_string(), "#3");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3.5f64), Value::Double(3.5));
        assert_eq!(Value::from(3u32), Value::Cat(3));
    }

    #[test]
    fn attr_type_of_values() {
        assert_eq!(Value::Int(1).attr_type(), Some(AttrType::Int));
        assert_eq!(Value::Double(1.0).attr_type(), Some(AttrType::Double));
        assert_eq!(Value::Cat(1).attr_type(), Some(AttrType::Categorical));
        assert_eq!(Value::Null.attr_type(), None);
    }

    #[test]
    fn attr_type_categorical_flag() {
        assert!(AttrType::Categorical.is_categorical());
        assert!(!AttrType::Int.is_categorical());
        assert!(!AttrType::Double.is_categorical());
    }
}
