//! Error types for the storage substrate.

use std::fmt;

/// Result alias used throughout `lmfao-data`.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An attribute name was not registered in the database schema.
    UnknownAttribute(String),
    /// A relation name was not registered in the database schema.
    UnknownRelation(String),
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Expected arity from the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A value's type does not match the attribute type.
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Human readable description of the expected type.
        expected: String,
        /// Human readable description of the value found.
        got: String,
    },
    /// CSV parsing failed.
    Csv {
        /// Line number (1-based) of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error occurred (message only, to keep the error cloneable).
    Io(String),
    /// A categorical dictionary lookup failed.
    UnknownCategory(String),
    /// A delta could not be applied to a relation.
    DeltaMismatch {
        /// Relation the delta targets.
        relation: String,
        /// Description of the problem (wrong target, unmatched delete, …).
        detail: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation `{relation}`: expected {expected}, got {got}"
            ),
            DataError::TypeMismatch {
                attribute,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for attribute `{attribute}`: expected {expected}, got {got}"
            ),
            DataError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            DataError::Io(msg) => write!(f, "io error: {msg}"),
            DataError::UnknownCategory(s) => write!(f, "unknown category `{s}`"),
            DataError::DeltaMismatch { relation, detail } => {
                write!(
                    f,
                    "delta cannot be applied to relation `{relation}`: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::UnknownAttribute("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = DataError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
        let e = DataError::Csv {
            line: 7,
            message: "bad int".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
