//! Typed columns: the storage cells of a columnar [`crate::relation::Relation`].
//!
//! The LMFAO hot loops are tight scans over sorted base relations: trie
//! grouping compares one attribute across consecutive rows, local-expression
//! sums read one or two attributes per tuple, and key extraction gathers a
//! handful of attributes. Row-major `Vec<Value>` storage makes every such
//! access pay a row-stride indirection plus an enum-tag branch. A [`Column`]
//! instead stores one attribute contiguously in its native representation —
//! `i64`, `f64`, or dictionary codes (`u32`) for categoricals — so scans read
//! dense typed slices and only materialize a [`Value`] at group boundaries or
//! output keys.
//!
//! Columns are self-typing: the first value pushed decides the
//! representation, and a value of another variant (or a [`Value::Null`])
//! demotes the column to the [`Column::Mixed`] fallback, which preserves the
//! exact row-oriented semantics (including cross-variant ordering) for
//! heterogeneous data. All typed fast paths are bit-for-bit equivalent to the
//! corresponding [`Value`] operations: `f64` comparisons use
//! [`f64::total_cmp`] and equality compares bit patterns, exactly like
//! `Value::Double`.

use crate::dictionary::Dictionary;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// A typed column of a relation.
#[derive(Debug, Clone)]
pub enum Column {
    /// All values are [`Value::Int`], stored as native `i64`.
    Int(Vec<i64>),
    /// All values are [`Value::Double`], stored as native `f64` (bit-exact,
    /// NaN payloads included).
    Float(Vec<f64>),
    /// All values are [`Value::Cat`]: dense dictionary codes, optionally
    /// carrying a shared handle to the dictionary that produced them (attached
    /// by [`crate::catalog::Database`] so the column can decode itself).
    Dict {
        /// The dictionary codes, one per row.
        codes: Vec<u32>,
        /// The dictionary the codes index into, when known.
        dictionary: Option<Arc<Dictionary>>,
    },
    /// Fallback for heterogeneous or null-bearing columns: plain enum storage
    /// with the row-oriented semantics.
    Mixed(Vec<Value>),
}

impl Column {
    /// An empty, not-yet-typed column (it adopts the variant of the first
    /// pushed value).
    pub fn new() -> Self {
        Column::Mixed(Vec::new())
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// True if the column holds no value.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves capacity for `additional` further values.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Int(v) => v.reserve(additional),
            Column::Float(v) => v.reserve(additional),
            Column::Dict { codes, .. } => codes.reserve(additional),
            Column::Mixed(v) => v.reserve(additional),
        }
    }

    /// Appends a value, retyping or demoting the column as needed: an empty
    /// untyped column adopts the variant of the first value; a mismatching
    /// variant (or a null) demotes typed storage to [`Column::Mixed`].
    ///
    /// Demoting a [`Column::Dict`] preserves every code (as [`Value::Cat`])
    /// but drops the attached dictionary handle — `Mixed` storage has
    /// nowhere to carry it, so [`Column::decode`] returns `None` afterwards.
    /// Decode through [`crate::dictionary::DictionarySet`] directly when a
    /// column may hold heterogeneous values.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (Column::Int(col), Value::Int(i)) => col.push(i),
            (Column::Float(col), Value::Double(d)) => col.push(d),
            (Column::Dict { codes, .. }, Value::Cat(c)) => codes.push(c),
            (Column::Mixed(col), v) if col.is_empty() => match v {
                Value::Int(i) => *self = Column::Int(vec![i]),
                Value::Double(d) => *self = Column::Float(vec![d]),
                Value::Cat(c) => {
                    *self = Column::Dict {
                        codes: vec![c],
                        dictionary: None,
                    }
                }
                Value::Null => col.push(Value::Null),
            },
            (Column::Mixed(col), v) => col.push(v),
            (typed, v) => {
                // Variant mismatch: demote to Mixed, preserving all values.
                let mut values: Vec<Value> = (0..typed.len()).map(|i| typed.value(i)).collect();
                values.push(v);
                *self = Column::Mixed(values);
            }
        }
    }

    /// The value at `row`, materialized as a [`Value`].
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Double(v[row]),
            Column::Dict { codes, .. } => Value::Cat(codes[row]),
            Column::Mixed(v) => v[row],
        }
    }

    /// The numeric interpretation of the value at `row`, without constructing
    /// a [`Value`] (matches [`Value::as_f64`] exactly).
    #[inline]
    pub fn f64_at(&self, row: usize) -> f64 {
        match self {
            Column::Int(v) => v[row] as f64,
            Column::Float(v) => v[row],
            Column::Dict { codes, .. } => codes[row] as f64,
            Column::Mixed(v) => v[row].as_f64(),
        }
    }

    /// Compares the values at two rows of this column with the total order of
    /// [`Value`] (typed columns never cross variants, so the comparison is a
    /// single native compare).
    #[inline]
    pub fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        match self {
            Column::Int(v) => v[a].cmp(&v[b]),
            Column::Float(v) => v[a].total_cmp(&v[b]),
            Column::Dict { codes, .. } => codes[a].cmp(&codes[b]),
            Column::Mixed(v) => v[a].cmp(&v[b]),
        }
    }

    /// True if the values at two rows are equal (bit equality for floats,
    /// like `Value::Double`).
    #[inline]
    pub fn eq_rows(&self, a: usize, b: usize) -> bool {
        match self {
            Column::Int(v) => v[a] == v[b],
            Column::Float(v) => v[a].to_bits() == v[b].to_bits(),
            Column::Dict { codes, .. } => codes[a] == codes[b],
            Column::Mixed(v) => v[a] == v[b],
        }
    }

    /// The typed `i64` slice, when this is an [`Column::Int`] column.
    #[inline]
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The typed `f64` slice, when this is a [`Column::Float`] column.
    #[inline]
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The dictionary-code slice, when this is a [`Column::Dict`] column.
    #[inline]
    pub fn as_codes(&self) -> Option<&[u32]> {
        match self {
            Column::Dict { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// The dictionary attached to a [`Column::Dict`] column, if any.
    pub fn dictionary(&self) -> Option<&Arc<Dictionary>> {
        match self {
            Column::Dict { dictionary, .. } => dictionary.as_ref(),
            _ => None,
        }
    }

    /// Attaches a shared dictionary to a [`Column::Dict`] column (no-op for
    /// other variants).
    pub fn attach_dictionary(&mut self, dict: Arc<Dictionary>) {
        if let Column::Dict { dictionary, .. } = self {
            *dictionary = Some(dict);
        }
    }

    /// Decodes the value at `row` through the attached dictionary, when this
    /// is a dict column with a dictionary and the code is in vocabulary.
    pub fn decode(&self, row: usize) -> Option<&str> {
        match self {
            Column::Dict {
                codes,
                dictionary: Some(d),
            } => d.decode(codes[row]),
            _ => None,
        }
    }

    /// Rebuilds the column under a row permutation: output row `i` takes the
    /// value of input row `perm[i]`. This is how sorting moves a columnar
    /// relation — one contiguous gather per column instead of row swaps.
    pub fn permute(&self, perm: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(perm.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(perm.iter().map(|&i| v[i as usize]).collect()),
            Column::Dict { codes, dictionary } => Column::Dict {
                codes: perm.iter().map(|&i| codes[i as usize]).collect(),
                dictionary: dictionary.clone(),
            },
            Column::Mixed(v) => Column::Mixed(perm.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Gathers the rows selected by `rows` into a new column (used by the
    /// columnar join materialization).
    pub fn gather(&self, rows: &[u32]) -> Column {
        self.permute(rows)
    }

    /// Payload size of the column in bytes (native representation).
    pub fn size_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<i64>(),
            Column::Float(v) => v.len() * std::mem::size_of::<f64>(),
            Column::Dict { codes, .. } => codes.len() * std::mem::size_of::<u32>(),
            Column::Mixed(v) => v.len() * std::mem::size_of::<Value>(),
        }
    }
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_value_decides_the_representation() {
        let mut c = Column::new();
        c.push(Value::Int(3));
        c.push(Value::Int(-1));
        assert!(matches!(c, Column::Int(_)));
        assert_eq!(c.as_int(), Some(&[3i64, -1][..]));

        let mut f = Column::new();
        f.push(Value::Double(0.5));
        assert!(matches!(f, Column::Float(_)));

        let mut d = Column::new();
        d.push(Value::Cat(7));
        assert_eq!(d.as_codes(), Some(&[7u32][..]));
    }

    #[test]
    fn variant_mismatch_demotes_to_mixed_losslessly() {
        let mut c = Column::new();
        c.push(Value::Int(1));
        c.push(Value::Double(2.5));
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Double(2.5));
    }

    #[test]
    fn nulls_force_mixed_storage() {
        let mut c = Column::new();
        c.push(Value::Null);
        c.push(Value::Int(4));
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Int(4));

        let mut t = Column::new();
        t.push(Value::Int(4));
        t.push(Value::Null);
        assert!(matches!(t, Column::Mixed(_)));
        assert_eq!(t.value(1), Value::Null);
    }

    #[test]
    fn float_comparisons_match_value_total_order() {
        let mut c = Column::new();
        c.push(Value::Double(f64::NAN));
        c.push(Value::Double(1.0));
        assert_eq!(c.cmp_rows(1, 0), Ordering::Less); // total_cmp: 1.0 < NaN
        assert!(c.eq_rows(0, 0)); // NaN bit-equals itself
        assert!(!c.eq_rows(0, 1));
    }

    #[test]
    fn permutation_gathers_values() {
        let mut c = Column::new();
        for i in 0..4 {
            c.push(Value::Int(i));
        }
        let p = c.permute(&[3, 1, 0, 2]);
        assert_eq!(p.as_int(), Some(&[3i64, 1, 0, 2][..]));
    }

    #[test]
    fn dictionary_attachment_and_decode() {
        let mut dict = Dictionary::new();
        let quito = dict.encode("Quito");
        let lima = dict.encode("Lima");
        let mut c = Column::new();
        c.push(Value::Cat(lima));
        c.push(Value::Cat(quito));
        assert!(c.decode(0).is_none(), "no dictionary attached yet");
        c.attach_dictionary(Arc::new(dict));
        assert_eq!(c.decode(0), Some("Lima"));
        assert_eq!(c.decode(1), Some("Quito"));
        assert!(c.dictionary().is_some());
    }

    #[test]
    fn out_of_vocabulary_codes_round_trip_and_decode_to_none() {
        // The satellite case: inserting a Cat code beyond the attached
        // dictionary's vocabulary is legal — the code is stored and compared
        // natively, decodes to None, and starts decoding once the dictionary
        // learns enough categories.
        let mut dict = Dictionary::new();
        dict.encode("known");
        let mut c = Column::new();
        c.push(Value::Cat(0));
        c.attach_dictionary(Arc::new(dict));
        c.push(Value::Cat(41)); // OOV insert
        assert!(matches!(c, Column::Dict { .. }), "stays dictionary-typed");
        assert_eq!(c.value(1), Value::Cat(41));
        assert_eq!(c.decode(0), Some("known"));
        assert_eq!(c.decode(1), None, "OOV code has no decoding yet");
        assert_eq!(c.cmp_rows(0, 1), Ordering::Less);
        // Growing the dictionary to cover the code makes it decodable.
        let mut grown = Dictionary::new();
        for i in 0..42 {
            grown.encode(&format!("cat{i}"));
        }
        c.attach_dictionary(Arc::new(grown));
        assert_eq!(c.decode(1), Some("cat41"));
    }

    #[test]
    fn f64_at_matches_value_as_f64() {
        for v in [
            Value::Int(-3),
            Value::Double(2.25),
            Value::Cat(9),
            Value::Null,
        ] {
            let mut c = Column::new();
            c.push(v);
            assert_eq!(c.f64_at(0), v.as_f64());
        }
    }

    #[test]
    fn size_bytes_uses_native_widths() {
        let mut c = Column::new();
        c.push(Value::Cat(1));
        c.push(Value::Cat(2));
        assert_eq!(c.size_bytes(), 2 * std::mem::size_of::<u32>());
    }
}
