//! Fixed-point encoding of aggregate values for exact certificate checking.
//!
//! Execution certificates (see the `lmfao-certify` crate) witness accounting
//! identities — "inserted minus deleted contributions net exactly to the
//! published aggregate change" — that must be checkable with *exact*
//! arithmetic: a checker that compares floats with a tolerance shares the
//! engine's rounding assumptions and can be argued with. Aggregate values are
//! therefore encoded as `i128` fixed-point numbers (a binary scale of
//! 2^[`FIXED_POINT_BITS`]) before they enter a certificate, and every
//! certificate identity is an integer equation.
//!
//! The encoding is a *witness projection*, not a storage format: the engine
//! keeps computing in `f64`, and each certificate value is the rounded
//! fixed-point image of the float it describes. Identities hold exactly
//! because both sides of every equation are computed **in the encoded
//! domain** (sums of encodings, never encodings of sums).
//!
//! Range: with 32 fractional bits, an `i128` spans magnitudes up to
//! ~1.7e38 / 2^32 ≈ 4e28 — far beyond any aggregate this engine produces —
//! with an absolute quantization step of 2^-33 ≈ 1.2e-10. Values whose
//! magnitude exceeds [`MAX_ENCODABLE`] saturate (and NaN encodes to 0), so
//! encoding never panics; both cases are outside the domain the engine
//! produces and exist only to keep the emitter total.

/// Number of fractional bits of the fixed-point encoding.
pub const FIXED_POINT_BITS: u32 = 32;

/// The fixed-point scale: encoded values are `round(x · FIXED_POINT_SCALE)`.
pub const FIXED_POINT_SCALE: i128 = 1 << FIXED_POINT_BITS;

/// Largest finite magnitude that encodes without saturating.
pub const MAX_ENCODABLE: f64 = (i128::MAX >> FIXED_POINT_BITS) as f64;

/// Encodes a float as a scaled `i128` fixed-point value.
///
/// Exact for every integer-valued `f64` within ±2^53 (counts, sums of
/// integers): `encode_fixed(n as f64) == n · FIXED_POINT_SCALE`. For general
/// floats the encoding rounds to the nearest multiple of
/// `1/FIXED_POINT_SCALE` (ties away from zero, following [`f64::round`]).
/// Non-finite inputs saturate: `NaN → 0`, `±∞` (and finite values beyond
/// [`MAX_ENCODABLE`]) to the clamped extremes.
#[inline]
pub fn encode_fixed(x: f64) -> i128 {
    if x.is_nan() {
        return 0;
    }
    let scaled = x * FIXED_POINT_SCALE as f64;
    if scaled >= i128::MAX as f64 {
        i128::MAX
    } else if scaled <= i128::MIN as f64 {
        i128::MIN
    } else {
        scaled.round() as i128
    }
}

/// Decodes a fixed-point value back to the nearest float.
///
/// `decode_fixed(encode_fixed(x))` differs from a finite `x` by at most half
/// a quantization step (2^-33) plus one float rounding, and is bit-exact for
/// integer-valued `x` within ±2^53.
#[inline]
pub fn decode_fixed(v: i128) -> f64 {
    v as f64 / FIXED_POINT_SCALE as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_encode_exactly() {
        for n in [-1_000_000i64, -3, 0, 1, 7, 40, 1 << 40, (1i64 << 53) - 1] {
            let e = encode_fixed(n as f64);
            assert_eq!(e, n as i128 * FIXED_POINT_SCALE, "n = {n}");
            assert_eq!(decode_fixed(e), n as f64, "n = {n}");
        }
    }

    #[test]
    fn round_trip_is_within_half_a_step() {
        let step = 1.0 / FIXED_POINT_SCALE as f64;
        for x in [0.1, 0.3, -2.75, 1e-9, 123.456e6, -9.999e12] {
            let back = decode_fixed(encode_fixed(x));
            assert!(
                (back - x).abs() <= step,
                "x = {x}, back = {back}, err = {}",
                (back - x).abs()
            );
        }
    }

    #[test]
    fn encoded_sums_are_exact_where_float_sums_are_not() {
        // The motivating identity: 0.1 + 0.2 - 0.3 != 0 in f64, but the
        // encoded contributions always net to an exact integer result.
        assert_ne!(0.1_f64 + 0.2 - 0.3, 0.0);
        let net = encode_fixed(0.1) + encode_fixed(0.2) - encode_fixed(0.1 + 0.2);
        assert_eq!(net, 0, "sums of encodings cancel exactly");
    }

    #[test]
    fn non_finite_inputs_saturate_instead_of_panicking() {
        assert_eq!(encode_fixed(f64::NAN), 0);
        assert_eq!(encode_fixed(f64::INFINITY), i128::MAX);
        assert_eq!(encode_fixed(f64::NEG_INFINITY), i128::MIN);
        assert_eq!(encode_fixed(MAX_ENCODABLE * 4.0), i128::MAX);
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let step = 1.0 / FIXED_POINT_SCALE as f64;
        assert_eq!(encode_fixed(step), 1);
        assert_eq!(encode_fixed(step * 0.4), 0);
        assert_eq!(encode_fixed(-step), -1);
        assert_eq!(encode_fixed(2.5 * step), 3, "ties round away from zero");
    }
}
