//! Minimal CSV import/export for relations.
//!
//! The paper's datasets ship as CSV files. The loader parses values according
//! to the relation schema's attribute types, dictionary-encoding categorical
//! columns through a shared [`DictionarySet`]. A writer is provided so that
//! synthetic datasets produced by `lmfao-datagen` can be materialized to disk
//! and re-loaded, exercising the same code path as external data.

use crate::dictionary::DictionarySet;
use crate::error::{DataError, Result};
use crate::relation::Relation;
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::value::{AttrType, Value};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses a single CSV line (no quoting support; the paper's datasets are
/// plain numeric/categorical columns) into fields.
fn split_line(line: &str, delimiter: char) -> Vec<&str> {
    line.split(delimiter).map(str::trim).collect()
}

/// Parses one field according to the attribute type.
fn parse_field(
    field: &str,
    ty: AttrType,
    attr_name: &str,
    attr: crate::schema::AttrId,
    dicts: &mut DictionarySet,
    line: usize,
) -> Result<Value> {
    if field.is_empty() || field == "NULL" || field == "null" {
        return Ok(Value::Null);
    }
    match ty {
        AttrType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DataError::Csv {
                line,
                message: format!("expected integer for `{attr_name}`, got `{field}`"),
            }),
        AttrType::Double => field
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| DataError::Csv {
                line,
                message: format!("expected double for `{attr_name}`, got `{field}`"),
            }),
        AttrType::Categorical => Ok(Value::Cat(dicts.encode(attr, field))),
    }
}

/// Reads a relation from a CSV reader. The column order must match the
/// relation schema.
pub fn read_relation<R: BufRead>(
    reader: R,
    schema: &DatabaseSchema,
    rel_schema: RelationSchema,
    dicts: &mut DictionarySet,
    delimiter: char,
    has_header: bool,
) -> Result<Relation> {
    let mut relation = Relation::new(rel_schema.clone());
    let mut row = Vec::with_capacity(rel_schema.arity());
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 && has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(&line, delimiter);
        if fields.len() != rel_schema.arity() {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!(
                    "expected {} fields, got {}",
                    rel_schema.arity(),
                    fields.len()
                ),
            });
        }
        row.clear();
        for (pos, field) in fields.iter().enumerate() {
            let attr = rel_schema.attrs[pos];
            let ty = schema.attr_type(attr);
            let name = schema.attr_name(attr);
            row.push(parse_field(field, ty, name, attr, dicts, i + 1)?);
        }
        relation.push_row(&row)?;
    }
    Ok(relation)
}

/// Reads a relation from a CSV file on disk.
pub fn read_relation_from_path(
    path: impl AsRef<Path>,
    schema: &DatabaseSchema,
    rel_schema: RelationSchema,
    dicts: &mut DictionarySet,
    delimiter: char,
    has_header: bool,
) -> Result<Relation> {
    let file = std::fs::File::open(path)?;
    read_relation(
        std::io::BufReader::new(file),
        schema,
        rel_schema,
        dicts,
        delimiter,
        has_header,
    )
}

/// Writes a relation as CSV, decoding categorical codes through the
/// dictionaries when available.
pub fn write_relation<W: Write>(
    writer: W,
    relation: &Relation,
    schema: &DatabaseSchema,
    dicts: &DictionarySet,
    delimiter: char,
    write_header: bool,
) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let attrs = &relation.schema().attrs;
    if write_header {
        let names: Vec<&str> = attrs.iter().map(|&a| schema.attr_name(a)).collect();
        writeln!(w, "{}", names.join(&delimiter.to_string()))?;
    }
    for i in 0..relation.len() {
        let mut fields = Vec::with_capacity(attrs.len());
        for (pos, &attr) in attrs.iter().enumerate() {
            let v = relation.value(i, pos);
            let s = match v {
                Value::Cat(code) => dicts
                    .decode(attr, code)
                    .map(str::to_string)
                    .unwrap_or_else(|| code.to_string()),
                Value::Null => String::new(),
                other => other.to_string(),
            };
            fields.push(s);
        }
        writeln!(w, "{}", fields.join(&delimiter.to_string()))?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a relation to a CSV file on disk.
pub fn write_relation_to_path(
    path: impl AsRef<Path>,
    relation: &Relation,
    schema: &DatabaseSchema,
    dicts: &DictionarySet,
    delimiter: char,
    write_header: bool,
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_relation(file, relation, schema, dicts, delimiter, write_header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;

    fn schema_and_rel() -> (DatabaseSchema, RelationSchema) {
        let mut s = DatabaseSchema::new();
        s.add_relation_with_attrs(
            "Items",
            &[
                ("item", AttrType::Int),
                ("family", AttrType::Categorical),
                ("price", AttrType::Double),
            ],
        );
        let rel = s.relation("Items").unwrap().clone();
        (s, rel)
    }

    #[test]
    fn parses_typed_columns_with_header() {
        let (schema, rel_schema) = schema_and_rel();
        let csv = "item,family,price\n1,GROCERY,2.5\n2,DAIRY,3.0\n3,GROCERY,1.25\n";
        let mut dicts = DictionarySet::new();
        let rel =
            read_relation(csv.as_bytes(), &schema, rel_schema, &mut dicts, ',', true).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.value(0, 0), Value::Int(1));
        assert_eq!(rel.value(0, 1), Value::Cat(0));
        assert_eq!(rel.value(1, 1), Value::Cat(1));
        assert_eq!(rel.value(2, 1), Value::Cat(0));
        assert_eq!(rel.value(1, 2), Value::Double(3.0));
        let family = schema.attr_id("family").unwrap();
        assert_eq!(dicts.decode(family, 0), Some("GROCERY"));
    }

    #[test]
    fn rejects_bad_integers_and_field_counts() {
        let (schema, rel_schema) = schema_and_rel();
        let mut dicts = DictionarySet::new();
        let bad_int = "1,GROCERY,2.5\nxx,DAIRY,1.0\n";
        let err = read_relation(
            bad_int.as_bytes(),
            &schema,
            rel_schema.clone(),
            &mut dicts,
            ',',
            false,
        )
        .unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));

        let bad_count = "1,GROCERY\n";
        let err = read_relation(
            bad_count.as_bytes(),
            &schema,
            rel_schema,
            &mut dicts,
            ',',
            false,
        )
        .unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 1, .. }));
    }

    #[test]
    fn null_and_empty_fields_become_null() {
        let (schema, rel_schema) = schema_and_rel();
        let mut dicts = DictionarySet::new();
        let csv = "1,GROCERY,NULL\n2,,3.5\n";
        let rel =
            read_relation(csv.as_bytes(), &schema, rel_schema, &mut dicts, ',', false).unwrap();
        assert_eq!(rel.value(0, 2), Value::Null);
        assert_eq!(rel.value(1, 1), Value::Null);
    }

    #[test]
    fn round_trip_write_read() {
        let (schema, rel_schema) = schema_and_rel();
        let mut dicts = DictionarySet::new();
        let csv = "1,GROCERY,2.5\n2,DAIRY,3\n";
        let rel = read_relation(
            csv.as_bytes(),
            &schema,
            rel_schema.clone(),
            &mut dicts,
            ',',
            false,
        )
        .unwrap();
        let mut out = Vec::new();
        write_relation(&mut out, &rel, &schema, &dicts, ',', true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("item,family,price\n"));
        assert!(text.contains("1,GROCERY,2.5"));
        // Re-read what we wrote.
        let rel2 =
            read_relation(text.as_bytes(), &schema, rel_schema, &mut dicts, ',', true).unwrap();
        assert_eq!(rel2.len(), rel.len());
        assert_eq!(rel2.value(1, 1), rel.value(1, 1));
    }

    #[test]
    fn file_round_trip() {
        let (schema, rel_schema) = schema_and_rel();
        let mut dicts = DictionarySet::new();
        let csv = "5,FROZEN,9.99\n";
        let rel = read_relation(
            csv.as_bytes(),
            &schema,
            rel_schema.clone(),
            &mut dicts,
            ',',
            false,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("lmfao_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("items.csv");
        write_relation_to_path(&path, &rel, &schema, &dicts, ',', false).unwrap();
        let rel2 =
            read_relation_from_path(&path, &schema, rel_schema, &mut dicts, ',', false).unwrap();
        assert_eq!(rel2.len(), 1);
        assert_eq!(rel2.value(0, 0), Value::Int(5));
        std::fs::remove_file(&path).ok();
    }
}
