//! Signed tuple deltas against base relations.
//!
//! A [`TableDelta`] is a batch of inserts and deletes targeting **one** base
//! relation, stored exactly like the relation itself — one typed [`Column`]
//! per attribute — plus one signed multiplicity per row: `+1` for an insert,
//! `-1` for a delete (a tombstone). Deltas are the unit of change the
//! incremental-maintenance machinery in `lmfao-core` consumes: applying a
//! delta to a [`Relation`] (see [`Relation::apply`]) keeps the relation's
//! sort order by *merging* the inserted rows into place rather than
//! re-sorting, and the engine re-scans only the delta partition.
//!
//! Deltas are dictionary-aware in the same sense as relations: categorical
//! values travel as [`Value::Cat`] codes. Codes outside the current
//! dictionary vocabulary (out-of-vocabulary inserts) are legal — they are
//! stored and compared as plain codes and simply decode to `None` until the
//! dictionary learns them via [`crate::dictionary::DictionarySet::encode`].

use crate::column::Column;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::RelationSchema;
use crate::value::Value;

/// A batch of signed tuple changes against one base relation.
#[derive(Debug, Clone)]
pub struct TableDelta {
    /// The touched tuples, stored columnar under the target relation's schema.
    rows: Relation,
    /// Signed multiplicity per row: `+1` insert, `-1` delete.
    signs: Vec<i8>,
}

impl TableDelta {
    /// An empty delta against a relation with the given schema (the schema
    /// name identifies the target relation).
    pub fn new(schema: RelationSchema) -> Self {
        TableDelta {
            rows: Relation::new(schema),
            signs: Vec::new(),
        }
    }

    /// An empty delta targeting an existing relation.
    pub fn for_relation(relation: &Relation) -> Self {
        TableDelta::new(relation.schema().clone())
    }

    /// Name of the target relation.
    pub fn relation(&self) -> &str {
        self.rows.name()
    }

    /// Records a tuple insertion, validating its arity.
    pub fn insert(&mut self, row: &[Value]) -> Result<()> {
        self.rows.push_row(row)?;
        self.signs.push(1);
        Ok(())
    }

    /// Records a tuple deletion (one occurrence of the exact tuple),
    /// validating its arity.
    pub fn delete(&mut self, row: &[Value]) -> Result<()> {
        self.rows.push_row(row)?;
        self.signs.push(-1);
        Ok(())
    }

    /// Number of recorded changes (inserts plus deletes).
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// True if the delta records no change.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// Number of inserted tuples.
    pub fn num_inserts(&self) -> usize {
        self.signs.iter().filter(|&&s| s > 0).count()
    }

    /// Number of deleted tuples.
    pub fn num_deletes(&self) -> usize {
        self.signs.iter().filter(|&&s| s < 0).count()
    }

    /// The touched tuples as a columnar relation (parallel to [`signs`]).
    ///
    /// [`signs`]: TableDelta::signs
    pub fn rows(&self) -> &Relation {
        &self.rows
    }

    /// The signed multiplicities, parallel to [`rows`].
    ///
    /// [`rows`]: TableDelta::rows
    pub fn signs(&self) -> &[i8] {
        &self.signs
    }

    /// Splits the delta into its insert (`+1`) and delete (`-1`) parts, each
    /// a standalone columnar relation under the target schema. The engine
    /// scans these as delta partitions.
    pub fn partition(&self) -> (Relation, Relation) {
        let gather = |keep: &dyn Fn(i8) -> bool| -> Relation {
            let idx: Vec<u32> = self
                .signs
                .iter()
                .enumerate()
                .filter(|(_, &s)| keep(s))
                .map(|(i, _)| i as u32)
                .collect();
            let cols: Vec<Column> = self.rows.columns().iter().map(|c| c.gather(&idx)).collect();
            Relation::from_columns(self.rows.schema().clone(), cols)
                .expect("partition columns share one length")
        };
        (gather(&|s| s > 0), gather(&|s| s < 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    fn schema() -> RelationSchema {
        RelationSchema::new("R", vec![AttrId(0), AttrId(1)])
    }

    #[test]
    fn records_signed_changes() {
        let mut d = TableDelta::new(schema());
        assert!(d.is_empty());
        d.insert(&[Value::Int(1), Value::Double(0.5)]).unwrap();
        d.insert(&[Value::Int(2), Value::Double(1.5)]).unwrap();
        d.delete(&[Value::Int(1), Value::Double(0.5)]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_inserts(), 2);
        assert_eq!(d.num_deletes(), 1);
        assert_eq!(d.relation(), "R");
        assert_eq!(d.signs(), &[1, 1, -1]);
    }

    #[test]
    fn arity_is_validated() {
        let mut d = TableDelta::new(schema());
        assert!(d.insert(&[Value::Int(1)]).is_err());
        assert!(d.delete(&[Value::Int(1)]).is_err());
        assert!(d.is_empty());
    }

    #[test]
    fn partition_splits_by_sign() {
        let mut d = TableDelta::new(schema());
        d.insert(&[Value::Int(1), Value::Double(0.5)]).unwrap();
        d.delete(&[Value::Int(2), Value::Double(1.5)]).unwrap();
        d.insert(&[Value::Int(3), Value::Double(2.5)]).unwrap();
        let (ins, del) = d.partition();
        assert_eq!(ins.len(), 2);
        assert_eq!(del.len(), 1);
        assert_eq!(ins.value(1, 0), Value::Int(3));
        assert_eq!(del.value(0, 0), Value::Int(2));
        // Partitions stay typed: the int column survives the gather.
        assert!(ins.column(0).as_int().is_some());
    }

    #[test]
    fn delta_columns_are_typed_and_demote_like_relations() {
        let mut d = TableDelta::new(schema());
        d.insert(&[Value::Int(1), Value::Double(0.5)]).unwrap();
        d.insert(&[Value::Double(9.0), Value::Double(1.5)]).unwrap();
        // Heterogeneous appends demote to Mixed, losslessly.
        assert!(matches!(d.rows().column(0), Column::Mixed(_)));
        assert_eq!(d.rows().value(0, 0), Value::Int(1));
        assert_eq!(d.rows().value(1, 0), Value::Double(9.0));
    }
}
