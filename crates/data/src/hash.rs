//! Fast, non-cryptographic hashing for view keys and join indices.
//!
//! The engine hashes millions of short tuple keys (view group-by tuples, join
//! keys). The standard library's SipHash is robust against HashDoS but slow
//! for this workload; the paper's C++ engine uses plain `std::unordered_map`
//! with trivial hashing of integer keys. We implement the well-known FxHash
//! mixing function (as used by rustc) locally instead of pulling an extra
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hash function.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hash function.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hashing state: a single 64-bit accumulator mixed with a rotate,
/// xor and multiply per written word.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Convenience constructor for an empty [`FxHashMap`].
pub fn fx_hash_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor for an [`FxHashMap`] with a capacity hint.
pub fn fx_hash_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor for an empty [`FxHashSet`].
pub fn fx_hash_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::hash::Hash;

    fn fx_hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_eq!(fx_hash_of(&"hello"), fx_hash_of(&"hello"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fx_hash_of(&1u64), fx_hash_of(&2u64));
        assert_ne!(fx_hash_of(&"a"), fx_hash_of(&"b"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<Vec<Value>, f64> = fx_hash_map();
        m.insert(vec![Value::Int(1), Value::Cat(2)], 3.5);
        m.insert(vec![Value::Int(1), Value::Cat(3)], 4.5);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&vec![Value::Int(1), Value::Cat(2)]], 3.5);
    }

    #[test]
    fn works_as_set_hasher() {
        let mut s: FxHashSet<u32> = fx_hash_set();
        s.insert(1);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn byte_stream_hashing_covers_remainder() {
        // 11 bytes exercises both the 8-byte chunk and the remainder path.
        let a = fx_hash_of(&b"hello world".as_slice());
        let b = fx_hash_of(&b"hello worle".as_slice());
        assert_ne!(a, b);
    }

    #[test]
    fn with_capacity_constructor() {
        let m: FxHashMap<u64, u64> = fx_hash_map_with_capacity(100);
        assert!(m.capacity() >= 100);
    }
}
