//! User-defined aggregate function (UDAF) building blocks.
//!
//! LMFAO aggregates are *sums of products of functions* over attributes
//! (Section 1.1 of the paper):
//!
//! ```text
//! α_i = Σ_{j ∈ [s_i]} Π_{k ∈ [p_ij]} f_ijk
//! ```
//!
//! The factors `f_ijk` are scalar functions of individual attributes (or of a
//! small set of attributes): constants, identities `X`, powers `X^a`,
//! Kronecker-delta indicators `1_{X op t}` used for decision-tree split
//! conditions, exponentials of linear forms used for logistic regression, and
//! *dynamic* functions whose implementation is swapped between iterations
//! (the paper compiles and dynamically links these; we keep them in a
//! registry, see [`crate::dynamic`]).

use lmfao_data::{AttrId, Value};
use std::fmt;

/// Comparison operators for indicator (Kronecker delta) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison to two values.
    #[inline]
    pub fn apply(self, left: Value, right: Value) -> bool {
        match self {
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
        }
    }

    /// The negated operator, used when splitting a decision-tree node into
    /// its left/right children.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A scalar function appearing as a factor of an aggregate product.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarFunction {
    /// A constant `c`. `Constant(1.0)` is the COUNT building block.
    Constant(f64),
    /// The identity `f(X) = X`, used for SUM(X).
    Identity(AttrId),
    /// A power `f(X) = X^a`, used for polynomial regression aggregates.
    Power {
        /// Attribute the power is taken of.
        attr: AttrId,
        /// Non-negative exponent.
        exponent: u32,
    },
    /// Kronecker delta `1_{X op t}`: evaluates to 1 when the condition holds,
    /// 0 otherwise. Encodes decision-tree split conditions on continuous
    /// attributes and equality selections on categorical attributes.
    Indicator {
        /// Attribute the condition is on.
        attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold or category to compare against.
        threshold: Value,
    },
    /// Set inclusion `1_{X ∈ S}` for categorical split conditions.
    InSet {
        /// Attribute the condition is on.
        attr: AttrId,
        /// Categories included in the split.
        set: Vec<Value>,
    },
    /// Exponential of a linear form `e^{Σ θ_j · X_j}` (logistic regression).
    ExpLinear {
        /// `(attribute, coefficient)` pairs of the linear form.
        coefficients: Vec<(AttrId, f64)>,
    },
    /// Natural logarithm `ln(X)`.
    Log(AttrId),
    /// A dynamic function resolved through the
    /// [`crate::dynamic::DynamicRegistry`] at evaluation time. The paper tags
    /// such functions so that their code is compiled between iterations and
    /// linked dynamically; here they are swappable closures.
    Dynamic {
        /// Identifier within the dynamic registry.
        id: usize,
        /// Attributes passed to the dynamic function, in order.
        attrs: Vec<AttrId>,
    },
}

impl ScalarFunction {
    /// The attributes this function reads.
    pub fn attrs(&self) -> Vec<AttrId> {
        match self {
            ScalarFunction::Constant(_) => vec![],
            ScalarFunction::Identity(a) | ScalarFunction::Log(a) => vec![*a],
            ScalarFunction::Power { attr, .. } => vec![*attr],
            ScalarFunction::Indicator { attr, .. } => vec![*attr],
            ScalarFunction::InSet { attr, .. } => vec![*attr],
            ScalarFunction::ExpLinear { coefficients } => {
                coefficients.iter().map(|(a, _)| *a).collect()
            }
            ScalarFunction::Dynamic { attrs, .. } => attrs.clone(),
        }
    }

    /// True if the function reads no attributes (is a constant factor).
    pub fn is_constant(&self) -> bool {
        matches!(self, ScalarFunction::Constant(_))
    }

    /// True if this is a dynamic function (must not be inlined/specialized,
    /// it may change between iterations).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, ScalarFunction::Dynamic { .. })
    }

    /// Evaluates the function given a lookup from attribute to current value.
    /// Dynamic functions need the registry and are evaluated through
    /// [`crate::dynamic::DynamicRegistry::evaluate`]; calling this directly on
    /// a dynamic function returns 1.0 (the neutral element).
    #[inline]
    pub fn evaluate<F>(&self, lookup: &F) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        match self {
            ScalarFunction::Constant(c) => *c,
            ScalarFunction::Identity(a) => lookup(*a).as_f64(),
            ScalarFunction::Power { attr, exponent } => {
                lookup(*attr).as_f64().powi(*exponent as i32)
            }
            ScalarFunction::Indicator {
                attr,
                op,
                threshold,
            } => {
                if op.apply(lookup(*attr), *threshold) {
                    1.0
                } else {
                    0.0
                }
            }
            ScalarFunction::InSet { attr, set } => {
                if set.contains(&lookup(*attr)) {
                    1.0
                } else {
                    0.0
                }
            }
            ScalarFunction::ExpLinear { coefficients } => {
                let s: f64 = coefficients
                    .iter()
                    .map(|(a, c)| c * lookup(*a).as_f64())
                    .sum();
                s.exp()
            }
            ScalarFunction::Log(a) => lookup(*a).as_f64().ln(),
            ScalarFunction::Dynamic { .. } => 1.0,
        }
    }

    /// Human-readable rendering with attribute names resolved by `name_of`.
    pub fn render<F>(&self, name_of: &F) -> String
    where
        F: Fn(AttrId) -> String,
    {
        match self {
            ScalarFunction::Constant(c) => format!("{c}"),
            ScalarFunction::Identity(a) => name_of(*a),
            ScalarFunction::Power { attr, exponent } => format!("{}^{}", name_of(*attr), exponent),
            ScalarFunction::Indicator {
                attr,
                op,
                threshold,
            } => {
                format!("1[{} {} {}]", name_of(*attr), op, threshold)
            }
            ScalarFunction::InSet { attr, set } => {
                format!("1[{} in {:?}]", name_of(*attr), set.len())
            }
            ScalarFunction::ExpLinear { coefficients } => {
                format!("exp(linear/{})", coefficients.len())
            }
            ScalarFunction::Log(a) => format!("ln({})", name_of(*a)),
            ScalarFunction::Dynamic { id, .. } => format!("dyn#{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(bindings: Vec<(AttrId, Value)>) -> impl Fn(AttrId) -> Value {
        move |a| {
            bindings
                .iter()
                .find(|(b, _)| *b == a)
                .map(|(_, v)| *v)
                .unwrap_or(Value::Null)
        }
    }

    #[test]
    fn cmp_op_apply_and_negate() {
        assert!(CmpOp::Lt.apply(Value::Int(1), Value::Int(2)));
        assert!(!CmpOp::Lt.apply(Value::Int(2), Value::Int(2)));
        assert!(CmpOp::Le.apply(Value::Int(2), Value::Int(2)));
        assert!(CmpOp::Eq.apply(Value::Cat(3), Value::Cat(3)));
        assert!(CmpOp::Ne.apply(Value::Cat(3), Value::Cat(4)));
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Ge.negate(), CmpOp::Lt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        // double negation is the identity
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn constant_and_identity() {
        let l = lookup(vec![(AttrId(0), Value::Double(2.5))]);
        assert_eq!(ScalarFunction::Constant(3.0).evaluate(&l), 3.0);
        assert_eq!(ScalarFunction::Identity(AttrId(0)).evaluate(&l), 2.5);
    }

    #[test]
    fn power_function() {
        let l = lookup(vec![(AttrId(1), Value::Double(3.0))]);
        let f = ScalarFunction::Power {
            attr: AttrId(1),
            exponent: 2,
        };
        assert_eq!(f.evaluate(&l), 9.0);
        let f0 = ScalarFunction::Power {
            attr: AttrId(1),
            exponent: 0,
        };
        assert_eq!(f0.evaluate(&l), 1.0);
    }

    #[test]
    fn indicator_matches_paper_semantics() {
        // 1_{X <= t} used for regression-tree nodes
        let l = lookup(vec![(AttrId(0), Value::Double(52000.0))]);
        let f = ScalarFunction::Indicator {
            attr: AttrId(0),
            op: CmpOp::Le,
            threshold: Value::Double(52775.0),
        };
        assert_eq!(f.evaluate(&l), 1.0);
        let g = ScalarFunction::Indicator {
            attr: AttrId(0),
            op: CmpOp::Gt,
            threshold: Value::Double(52775.0),
        };
        assert_eq!(g.evaluate(&l), 0.0);
    }

    #[test]
    fn in_set_for_categorical_splits() {
        let l = lookup(vec![(AttrId(2), Value::Cat(5))]);
        let f = ScalarFunction::InSet {
            attr: AttrId(2),
            set: vec![Value::Cat(1), Value::Cat(5)],
        };
        assert_eq!(f.evaluate(&l), 1.0);
        let g = ScalarFunction::InSet {
            attr: AttrId(2),
            set: vec![Value::Cat(1)],
        };
        assert_eq!(g.evaluate(&l), 0.0);
    }

    #[test]
    fn exp_linear_and_log() {
        let l = lookup(vec![
            (AttrId(0), Value::Double(1.0)),
            (AttrId(1), Value::Double(2.0)),
        ]);
        let f = ScalarFunction::ExpLinear {
            coefficients: vec![(AttrId(0), 0.5), (AttrId(1), 0.25)],
        };
        assert!((f.evaluate(&l) - (0.5 + 0.5_f64).exp()).abs() < 1e-12);
        let g = ScalarFunction::Log(AttrId(1));
        assert!((g.evaluate(&l) - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn attrs_extraction() {
        assert!(ScalarFunction::Constant(1.0).attrs().is_empty());
        assert_eq!(ScalarFunction::Identity(AttrId(3)).attrs(), vec![AttrId(3)]);
        let e = ScalarFunction::ExpLinear {
            coefficients: vec![(AttrId(0), 1.0), (AttrId(2), 1.0)],
        };
        assert_eq!(e.attrs(), vec![AttrId(0), AttrId(2)]);
        let d = ScalarFunction::Dynamic {
            id: 0,
            attrs: vec![AttrId(1), AttrId(4)],
        };
        assert_eq!(d.attrs(), vec![AttrId(1), AttrId(4)]);
        assert!(d.is_dynamic());
        assert!(!d.is_constant());
        assert!(ScalarFunction::Constant(2.0).is_constant());
    }

    #[test]
    fn render_uses_attribute_names() {
        let name_of = |a: AttrId| format!("x{}", a.0);
        let f = ScalarFunction::Indicator {
            attr: AttrId(0),
            op: CmpOp::Le,
            threshold: Value::Int(10),
        };
        assert_eq!(f.render(&name_of), "1[x0 <= 10]");
        assert_eq!(ScalarFunction::Identity(AttrId(2)).render(&name_of), "x2");
    }
}
