//! # lmfao-expr
//!
//! The aggregate language of LMFAO: scalar functions (identity, powers,
//! Kronecker-delta indicators, exponentials, dynamic functions), aggregates
//! as sums of products of functions, group-by aggregate queries of the form
//! `Q(F; α) += R1, …, Rm`, and batches of such queries over the same natural
//! join.

#![warn(missing_docs)]

pub mod aggregate;
pub mod dynamic;
pub mod function;
pub mod query;

pub use aggregate::{Aggregate, ProductTerm};
pub use dynamic::{DynamicFn, DynamicRegistry};
pub use function::{CmpOp, ScalarFunction};
pub use query::{Query, QueryBatch, QueryId};
