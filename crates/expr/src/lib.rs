//! # lmfao-expr
//!
//! The aggregate language of LMFAO: scalar functions (identity, powers,
//! Kronecker-delta indicators, exponentials, dynamic functions), aggregates
//! as sums of products of functions, group-by aggregate queries of the form
//! `Q(F; α) += R1, …, Rm`, and batches of such queries over the same natural
//! join.

#![warn(missing_docs)]

pub mod aggregate;
pub mod dynamic;
pub mod function;
pub mod query;

pub use aggregate::{Aggregate, ProductTerm};
pub use dynamic::{DynamicFn, DynamicRegistry};
pub use function::{CmpOp, ScalarFunction};
pub use query::{Query, QueryBatch, QueryId};

#[cfg(test)]
mod smoke {
    use super::*;
    use lmfao_data::{AttrId, Value};

    /// Exercises the crate-level surface consumed by the engine and the ML
    /// layer: aggregate constructors, product terms and query batches.
    #[test]
    fn batch_of_aggregates_over_products() {
        let (x, y) = (AttrId(0), AttrId(1));
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push(
            "stats",
            vec![x],
            vec![Aggregate::sum(y), Aggregate::sum_square(y)],
        );
        batch.push(
            "guarded",
            vec![],
            vec![Aggregate::product(
                ProductTerm::single(ScalarFunction::Indicator {
                    attr: x,
                    op: CmpOp::Le,
                    threshold: Value::Double(1.5),
                })
                .times(ScalarFunction::Identity(y)),
            )],
        );
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(Aggregate::sum_product(x, y), Aggregate::sum_product(x, y));
    }
}
