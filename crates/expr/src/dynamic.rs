//! Dynamic user-defined aggregate functions.
//!
//! Some applications (notably decision-tree learning) repeatedly evaluate the
//! same aggregate batch with slightly different functions: each CART node adds
//! one more split predicate. The paper tags these functions as *dynamic*; the
//! generated code calls them through a separate compilation unit that is
//! recompiled and dynamically linked between iterations, so the bulk of the
//! specialized code does not need to be regenerated.
//!
//! In this reproduction a dynamic function is a closure registered in a
//! [`DynamicRegistry`]. Plans reference dynamic functions by id
//! ([`crate::function::ScalarFunction::Dynamic`]); swapping the closure
//! between iterations changes the computed aggregates without re-planning —
//! the same role dynamic linking plays in the paper.

use lmfao_data::Value;
use std::sync::Arc;

/// A dynamic scalar function: takes the values of its registered attributes
/// (in registration order) and returns a factor.
pub type DynamicFn = Arc<dyn Fn(&[Value]) -> f64 + Send + Sync>;

/// A registry of dynamic functions, indexed by id.
#[derive(Clone, Default)]
pub struct DynamicRegistry {
    functions: Vec<DynamicFn>,
}

impl DynamicRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function and returns its id.
    pub fn register<F>(&mut self, f: F) -> usize
    where
        F: Fn(&[Value]) -> f64 + Send + Sync + 'static,
    {
        let id = self.functions.len();
        self.functions.push(Arc::new(f));
        id
    }

    /// Replaces the function registered under `id` (e.g. between decision
    /// tree iterations). Panics if `id` was never registered.
    pub fn replace<F>(&mut self, id: usize, f: F)
    where
        F: Fn(&[Value]) -> f64 + Send + Sync + 'static,
    {
        self.functions[id] = Arc::new(f);
    }

    /// Evaluates the function `id` on the given argument values. Unknown ids
    /// evaluate to the multiplicative identity 1.0 so that an unset dynamic
    /// function behaves as "no extra condition".
    #[inline]
    pub fn evaluate(&self, id: usize, args: &[Value]) -> f64 {
        match self.functions.get(id) {
            Some(f) => f(args),
            None => 1.0,
        }
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if no function is registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

impl std::fmt::Debug for DynamicRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicRegistry")
            .field("functions", &self.functions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_evaluate() {
        let mut reg = DynamicRegistry::new();
        let id = reg.register(|args: &[Value]| if args[0].as_f64() > 3.0 { 1.0 } else { 0.0 });
        assert_eq!(reg.evaluate(id, &[Value::Double(5.0)]), 1.0);
        assert_eq!(reg.evaluate(id, &[Value::Double(1.0)]), 0.0);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn unknown_id_is_neutral() {
        let reg = DynamicRegistry::new();
        assert_eq!(reg.evaluate(17, &[Value::Int(0)]), 1.0);
        assert!(reg.is_empty());
    }

    #[test]
    fn replace_swaps_behaviour_without_reregistration() {
        let mut reg = DynamicRegistry::new();
        let id = reg.register(|_| 0.0);
        assert_eq!(reg.evaluate(id, &[]), 0.0);
        reg.replace(id, |_| 42.0);
        assert_eq!(reg.evaluate(id, &[]), 42.0);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn clone_shares_closures() {
        let mut reg = DynamicRegistry::new();
        let id = reg.register(|args: &[Value]| args.iter().map(|v| v.as_f64()).sum());
        let cloned = reg.clone();
        assert_eq!(cloned.evaluate(id, &[Value::Int(1), Value::Int(2)]), 3.0);
    }

    #[test]
    fn debug_does_not_leak_closures() {
        let mut reg = DynamicRegistry::new();
        reg.register(|_| 1.0);
        let s = format!("{reg:?}");
        assert!(s.contains("DynamicRegistry"));
        assert!(s.contains('1'));
    }
}
