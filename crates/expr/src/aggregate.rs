//! Aggregates: sums of products of scalar functions.

use crate::dynamic::DynamicRegistry;
use crate::function::{CmpOp, ScalarFunction};
use lmfao_data::{AttrId, FxHashSet, Value};

/// A product of scalar functions `Π_k f_k`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProductTerm {
    /// The factors of the product. An empty product evaluates to 1
    /// (the COUNT aggregate).
    pub factors: Vec<ScalarFunction>,
}

impl ProductTerm {
    /// The empty product (evaluates to 1, i.e. COUNT).
    pub fn one() -> Self {
        ProductTerm { factors: vec![] }
    }

    /// A product with a single factor.
    pub fn single(f: ScalarFunction) -> Self {
        ProductTerm { factors: vec![f] }
    }

    /// A product of the given factors.
    pub fn of(factors: Vec<ScalarFunction>) -> Self {
        ProductTerm { factors }
    }

    /// Multiplies this product by another factor (builder style).
    pub fn times(mut self, f: ScalarFunction) -> Self {
        self.factors.push(f);
        self
    }

    /// All attributes read by the product.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut set = FxHashSet::default();
        let mut out = Vec::new();
        for f in &self.factors {
            for a in f.attrs() {
                if set.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// True if any factor is a dynamic function.
    pub fn has_dynamic(&self) -> bool {
        self.factors.iter().any(ScalarFunction::is_dynamic)
    }

    /// Evaluates the product under a binding of attributes to values.
    pub fn evaluate<F>(&self, lookup: &F, dynamics: &DynamicRegistry) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        let mut prod = 1.0;
        for f in &self.factors {
            let v = match f {
                ScalarFunction::Dynamic { id, attrs } => {
                    let args: Vec<Value> = attrs.iter().map(|&a| lookup(a)).collect();
                    dynamics.evaluate(*id, &args)
                }
                other => other.evaluate(lookup),
            };
            prod *= v;
            if prod == 0.0 {
                return 0.0;
            }
        }
        prod
    }
}

/// An aggregate: a sum of products of scalar functions, `Σ_j Π_k f_jk`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The summands.
    pub terms: Vec<ProductTerm>,
}

impl Aggregate {
    /// `SUM(1)`, i.e. COUNT(*).
    pub fn count() -> Self {
        Aggregate {
            terms: vec![ProductTerm::one()],
        }
    }

    /// `SUM(X)`.
    pub fn sum(attr: AttrId) -> Self {
        Aggregate {
            terms: vec![ProductTerm::single(ScalarFunction::Identity(attr))],
        }
    }

    /// `SUM(X * Y)`, the covariance-matrix entry building block.
    pub fn sum_product(a: AttrId, b: AttrId) -> Self {
        Aggregate {
            terms: vec![ProductTerm::of(vec![
                ScalarFunction::Identity(a),
                ScalarFunction::Identity(b),
            ])],
        }
    }

    /// `SUM(X^2)`.
    pub fn sum_square(attr: AttrId) -> Self {
        Aggregate {
            terms: vec![ProductTerm::single(ScalarFunction::Power {
                attr,
                exponent: 2,
            })],
        }
    }

    /// `SUM(Π X_j^{a_j})`, the polynomial-regression aggregate of Eq. (5).
    pub fn sum_monomial(powers: &[(AttrId, u32)]) -> Self {
        let factors = powers
            .iter()
            .filter(|(_, e)| *e > 0)
            .map(|&(attr, exponent)| ScalarFunction::Power { attr, exponent })
            .collect();
        Aggregate {
            terms: vec![ProductTerm::of(factors)],
        }
    }

    /// An aggregate from a single product term.
    pub fn product(term: ProductTerm) -> Self {
        Aggregate { terms: vec![term] }
    }

    /// An aggregate from several product terms (a true sum of products).
    pub fn sum_of(terms: Vec<ProductTerm>) -> Self {
        Aggregate { terms }
    }

    /// Multiplies every term by an extra factor (used to push a selection
    /// condition such as a decision-tree predicate into an aggregate).
    pub fn times(mut self, f: ScalarFunction) -> Self {
        for t in &mut self.terms {
            t.factors.push(f.clone());
        }
        self
    }

    /// All attributes read by the aggregate, in first-appearance order.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut set = FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.terms {
            for a in t.attrs() {
                if set.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// True if the aggregate contains a dynamic function.
    pub fn has_dynamic(&self) -> bool {
        self.terms.iter().any(ProductTerm::has_dynamic)
    }

    /// Evaluates the aggregate under a binding of attributes to values: this
    /// is the per-tuple contribution, which the engine sums over tuples.
    pub fn evaluate<F>(&self, lookup: &F, dynamics: &DynamicRegistry) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        self.terms
            .iter()
            .map(|t| t.evaluate(lookup, dynamics))
            .sum()
    }

    /// Convenience constructor for the decision-tree condition product
    /// `1_{X1 op1 t1} · 1_{X2 op2 t2} · …` (the `α` of Eq. (8)).
    pub fn conditions(conds: &[(AttrId, CmpOp, Value)]) -> ProductTerm {
        ProductTerm::of(
            conds
                .iter()
                .map(|&(attr, op, threshold)| ScalarFunction::Indicator {
                    attr,
                    op,
                    threshold,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(bindings: Vec<(AttrId, f64)>) -> impl Fn(AttrId) -> Value {
        move |a| {
            bindings
                .iter()
                .find(|(b, _)| *b == a)
                .map(|(_, v)| Value::Double(*v))
                .unwrap_or(Value::Null)
        }
    }

    #[test]
    fn count_evaluates_to_one_per_tuple() {
        let agg = Aggregate::count();
        let reg = DynamicRegistry::new();
        assert_eq!(agg.evaluate(&lookup(vec![]), &reg), 1.0);
        assert!(agg.attrs().is_empty());
    }

    #[test]
    fn sum_and_sum_product() {
        let reg = DynamicRegistry::new();
        let l = lookup(vec![(AttrId(0), 3.0), (AttrId(1), 4.0)]);
        assert_eq!(Aggregate::sum(AttrId(0)).evaluate(&l, &reg), 3.0);
        assert_eq!(
            Aggregate::sum_product(AttrId(0), AttrId(1)).evaluate(&l, &reg),
            12.0
        );
        assert_eq!(Aggregate::sum_square(AttrId(1)).evaluate(&l, &reg), 16.0);
    }

    #[test]
    fn monomial_aggregate() {
        let reg = DynamicRegistry::new();
        let l = lookup(vec![(AttrId(0), 2.0), (AttrId(1), 3.0)]);
        let agg = Aggregate::sum_monomial(&[(AttrId(0), 2), (AttrId(1), 1), (AttrId(2), 0)]);
        assert_eq!(agg.evaluate(&l, &reg), 12.0);
        // zero exponents are dropped entirely
        assert_eq!(agg.terms[0].factors.len(), 2);
    }

    #[test]
    fn sum_of_products_adds_terms() {
        let reg = DynamicRegistry::new();
        let l = lookup(vec![(AttrId(0), 2.0), (AttrId(1), 3.0)]);
        // θ0·X0 + θ1·X1 with θ0 = 10, θ1 = 100 → 20 + 300
        let agg = Aggregate::sum_of(vec![
            ProductTerm::of(vec![
                ScalarFunction::Constant(10.0),
                ScalarFunction::Identity(AttrId(0)),
            ]),
            ProductTerm::of(vec![
                ScalarFunction::Constant(100.0),
                ScalarFunction::Identity(AttrId(1)),
            ]),
        ]);
        assert_eq!(agg.evaluate(&l, &reg), 320.0);
    }

    #[test]
    fn times_pushes_condition_into_every_term() {
        let reg = DynamicRegistry::new();
        let cond = ScalarFunction::Indicator {
            attr: AttrId(2),
            op: CmpOp::Le,
            threshold: Value::Double(5.0),
        };
        let agg = Aggregate::sum_of(vec![
            ProductTerm::single(ScalarFunction::Identity(AttrId(0))),
            ProductTerm::single(ScalarFunction::Identity(AttrId(1))),
        ])
        .times(cond);
        let l_pass = lookup(vec![(AttrId(0), 2.0), (AttrId(1), 3.0), (AttrId(2), 4.0)]);
        let l_fail = lookup(vec![(AttrId(0), 2.0), (AttrId(1), 3.0), (AttrId(2), 6.0)]);
        assert_eq!(agg.evaluate(&l_pass, &reg), 5.0);
        assert_eq!(agg.evaluate(&l_fail, &reg), 0.0);
    }

    #[test]
    fn conditions_product_matches_decision_tree_alpha() {
        let reg = DynamicRegistry::new();
        let alpha = Aggregate::conditions(&[
            (AttrId(0), CmpOp::Ge, Value::Double(1.0)),
            (AttrId(1), CmpOp::Le, Value::Double(3.0)),
        ]);
        let agg = Aggregate::product(alpha);
        let l_in = lookup(vec![(AttrId(0), 2.0), (AttrId(1), 2.0)]);
        let l_out = lookup(vec![(AttrId(0), 0.5), (AttrId(1), 2.0)]);
        assert_eq!(agg.evaluate(&l_in, &reg), 1.0);
        assert_eq!(agg.evaluate(&l_out, &reg), 0.0);
    }

    #[test]
    fn attrs_are_deduplicated() {
        let agg = Aggregate::sum_of(vec![
            ProductTerm::of(vec![
                ScalarFunction::Identity(AttrId(0)),
                ScalarFunction::Identity(AttrId(1)),
            ]),
            ProductTerm::of(vec![
                ScalarFunction::Identity(AttrId(1)),
                ScalarFunction::Identity(AttrId(2)),
            ]),
        ]);
        assert_eq!(agg.attrs(), vec![AttrId(0), AttrId(1), AttrId(2)]);
    }

    #[test]
    fn dynamic_functions_use_registry() {
        let mut reg = DynamicRegistry::new();
        let id = reg.register(|args: &[Value]| args[0].as_f64() * 2.0);
        let agg = Aggregate::product(ProductTerm::single(ScalarFunction::Dynamic {
            id,
            attrs: vec![AttrId(0)],
        }));
        assert!(agg.has_dynamic());
        let l = lookup(vec![(AttrId(0), 4.0)]);
        assert_eq!(agg.evaluate(&l, &reg), 8.0);
    }

    #[test]
    fn zero_short_circuit() {
        let reg = DynamicRegistry::new();
        // indicator fails => the identity factor must not matter even if NaN
        let term = ProductTerm::of(vec![
            ScalarFunction::Indicator {
                attr: AttrId(0),
                op: CmpOp::Gt,
                threshold: Value::Double(10.0),
            },
            ScalarFunction::Log(AttrId(1)), // ln(0) = -inf, must be skipped
        ]);
        let l = lookup(vec![(AttrId(0), 1.0), (AttrId(1), 0.0)]);
        assert_eq!(term.evaluate(&l, &reg), 0.0);
    }
}
