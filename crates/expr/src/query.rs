//! Group-by aggregate queries and query batches.
//!
//! A query follows the paper's compact formulation (Eq. 1):
//!
//! ```text
//! Q(F1, …, Ff ; α1, …, αl) += R1(ω_R1), …, Rm(ω_Rm)
//! ```
//!
//! i.e. a set of group-by attributes `F`, a tuple of aggregates `α`, and the
//! natural join of the database relations as the body. Applications produce
//! [`QueryBatch`]es of tens to tens of thousands of such queries sharing the
//! same join; the LMFAO engine evaluates the whole batch at once.

use crate::aggregate::Aggregate;
use lmfao_data::{AttrId, FxHashSet};

/// Identifier of a query within a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

/// A single group-by aggregate query over the natural join of the database.
#[derive(Debug, Clone)]
pub struct Query {
    /// Identifier within the batch.
    pub id: QueryId,
    /// Human-readable name, e.g. `"Covar_3_7"` or `"Cube_{store,city}"`.
    pub name: String,
    /// Group-by attributes `F1, …, Ff`.
    pub group_by: Vec<AttrId>,
    /// The aggregates `α1, …, αl` computed for each group.
    pub aggregates: Vec<Aggregate>,
}

impl Query {
    /// Creates a query.
    pub fn new(
        id: usize,
        name: impl Into<String>,
        group_by: Vec<AttrId>,
        aggregates: Vec<Aggregate>,
    ) -> Self {
        Query {
            id: QueryId(id),
            name: name.into(),
            group_by,
            aggregates,
        }
    }

    /// All attributes the query touches: group-by attributes plus every
    /// attribute read by an aggregate.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut seen: FxHashSet<AttrId> = self.group_by.iter().copied().collect();
        let mut out = self.group_by.clone();
        for agg in &self.aggregates {
            for a in agg.attrs() {
                if seen.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Number of aggregates in the query.
    pub fn num_aggregates(&self) -> usize {
        self.aggregates.len()
    }

    /// True if the query has no group-by attributes (scalar output).
    pub fn is_scalar(&self) -> bool {
        self.group_by.is_empty()
    }

    /// True if any aggregate uses a dynamic function.
    pub fn has_dynamic(&self) -> bool {
        self.aggregates.iter().any(Aggregate::has_dynamic)
    }
}

/// A batch of queries over the same natural join, the unit of work the LMFAO
/// engine optimizes as a whole.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    /// The queries of the batch.
    pub queries: Vec<Query>,
}

impl QueryBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from queries.
    pub fn from_queries(queries: Vec<Query>) -> Self {
        QueryBatch { queries }
    }

    /// Adds a query built from its parts, assigning the next id. Returns the
    /// assigned [`QueryId`].
    pub fn push(
        &mut self,
        name: impl Into<String>,
        group_by: Vec<AttrId>,
        aggregates: Vec<Aggregate>,
    ) -> QueryId {
        let id = self.queries.len();
        self.queries
            .push(Query::new(id, name, group_by, aggregates));
        QueryId(id)
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the batch holds no query.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total number of aggregates across all queries (the paper's
    /// "application aggregates" count, column A of Table 2).
    pub fn num_aggregates(&self) -> usize {
        self.queries.iter().map(Query::num_aggregates).sum()
    }

    /// All distinct attributes used by the batch.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for q in &self.queries {
            for a in q.attrs() {
                if seen.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Iterates over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &Query> {
        self.queries.iter()
    }

    /// The query with the given id.
    pub fn query(&self, id: QueryId) -> &Query {
        &self.queries[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;

    #[test]
    fn query_attrs_include_group_by_and_aggregate_attrs() {
        let q = Query::new(
            0,
            "Q",
            vec![AttrId(5)],
            vec![
                Aggregate::sum_product(AttrId(1), AttrId(2)),
                Aggregate::count(),
            ],
        );
        assert_eq!(q.attrs(), vec![AttrId(5), AttrId(1), AttrId(2)]);
        assert_eq!(q.num_aggregates(), 2);
        assert!(!q.is_scalar());
        assert!(!q.has_dynamic());
    }

    #[test]
    fn scalar_query() {
        let q = Query::new(0, "count", vec![], vec![Aggregate::count()]);
        assert!(q.is_scalar());
    }

    #[test]
    fn batch_push_assigns_sequential_ids() {
        let mut b = QueryBatch::new();
        assert!(b.is_empty());
        let q0 = b.push("a", vec![], vec![Aggregate::count()]);
        let q1 = b.push("b", vec![AttrId(0)], vec![Aggregate::sum(AttrId(1))]);
        assert_eq!(q0, QueryId(0));
        assert_eq!(q1, QueryId(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b.query(q1).name, "b");
    }

    #[test]
    fn batch_aggregate_count_and_attrs() {
        let mut b = QueryBatch::new();
        b.push(
            "a",
            vec![AttrId(0)],
            vec![Aggregate::count(), Aggregate::sum(AttrId(1))],
        );
        b.push("b", vec![AttrId(0)], vec![Aggregate::sum(AttrId(2))]);
        assert_eq!(b.num_aggregates(), 3);
        assert_eq!(b.attrs(), vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn batch_from_queries() {
        let b =
            QueryBatch::from_queries(vec![Query::new(0, "x", vec![], vec![Aggregate::count()])]);
        assert_eq!(b.len(), 1);
    }
}
