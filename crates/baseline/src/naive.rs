//! The materialized-join baseline engine.
//!
//! This reproduces the evaluation strategy of the systems the paper compares
//! against (PostgreSQL, MonetDB, the commercial DBX): materialize the natural
//! join of the database once, then compute **each query of the batch
//! separately** over the join, with no sharing of computation across queries.
//! The contrast with LMFAO's shared, factorized evaluation is what Table 3
//! measures.

use lmfao_data::{AttrId, Column, Database, FxHashMap, Relation, Value};
use lmfao_expr::{DynamicRegistry, Query, QueryBatch};
use lmfao_jointree::{natural_join, JoinTree};

/// The result of one query computed by the baseline.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Group-by attributes, in the query's order (the key tuple order below).
    pub group_by: Vec<AttrId>,
    /// Key tuple → aggregate values.
    pub data: FxHashMap<Vec<Value>, Vec<f64>>,
}

impl BaselineResult {
    /// The aggregates of a group.
    pub fn get(&self, key: &[Value]) -> Option<&[f64]> {
        self.data.get(key).map(Vec::as_slice)
    }

    /// The aggregates of a scalar query (zeros when the join is empty).
    pub fn scalar(&self, num_aggregates: usize) -> Vec<f64> {
        self.data
            .get(&Vec::new() as &Vec<Value>)
            .cloned()
            .unwrap_or_else(|| vec![0.0; num_aggregates])
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no group was produced.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A baseline engine holding the materialized join.
#[derive(Debug, Clone)]
pub struct MaterializedEngine {
    join: Relation,
}

impl MaterializedEngine {
    /// Materializes the natural join of all relations, joining along the join
    /// tree in breadth-first order so that every pairwise join has shared
    /// attributes (no accidental cartesian products).
    pub fn materialize(db: &Database, tree: &JoinTree) -> Self {
        let order = tree.bfs_order(0);
        let relations: Vec<&Relation> = order
            .iter()
            .map(|&(node, _)| {
                db.relation(&tree.node(node).relation)
                    .expect("tree node relation must exist")
            })
            .collect();
        let join = natural_join(&relations, "Join");
        MaterializedEngine { join }
    }

    /// Constructs the engine from an already materialized join.
    pub fn from_join(join: Relation) -> Self {
        MaterializedEngine { join }
    }

    /// The materialized join.
    pub fn join(&self) -> &Relation {
        &self.join
    }

    /// Size of the materialized join in bytes — the cost LMFAO avoids
    /// (Table 1's "Size of Join Result").
    pub fn join_size_bytes(&self) -> usize {
        self.join.size_bytes()
    }

    /// Resolves every column position a query touches (group-by keys and all
    /// aggregate attributes) against the join once, mirroring the LMFAO
    /// engine's prepare/execute split: re-executing a
    /// [`PreparedBaselineBatch`] with a changing [`DynamicRegistry`] performs
    /// no per-row schema lookups.
    pub fn prepare(&self, batch: &QueryBatch) -> PreparedBaselineBatch {
        PreparedBaselineBatch {
            queries: batch
                .queries
                .iter()
                .map(|q| self.resolve_query(q))
                .collect(),
        }
    }

    fn resolve_query(&self, query: &Query) -> PreparedBaselineQuery {
        PreparedBaselineQuery {
            query: query.clone(),
            key_positions: query
                .group_by
                .iter()
                .map(|a| self.join.position(*a))
                .collect(),
            attr_positions: query
                .attrs()
                .into_iter()
                .map(|a| (a, self.join.position(a)))
                .collect(),
        }
    }

    /// Computes a single query by scanning the full join.
    pub fn execute_query(&self, query: &Query, dynamics: &DynamicRegistry) -> BaselineResult {
        let key_positions: Vec<Option<usize>> = query
            .group_by
            .iter()
            .map(|a| self.join.position(*a))
            .collect();
        let attr_positions: FxHashMap<AttrId, Option<usize>> = query
            .attrs()
            .into_iter()
            .map(|a| (a, self.join.position(a)))
            .collect();
        self.scan_query(query, &key_positions, &attr_positions, dynamics)
    }

    /// Computes every query of a batch, one at a time (no sharing).
    pub fn execute_batch(
        &self,
        batch: &QueryBatch,
        dynamics: &DynamicRegistry,
    ) -> Vec<BaselineResult> {
        self.execute_prepared(&self.prepare(batch), dynamics)
    }

    /// Executes a prepared batch, one full-join scan per query.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedBaselineBatch,
        dynamics: &DynamicRegistry,
    ) -> Vec<BaselineResult> {
        prepared
            .queries
            .iter()
            .map(|q| self.scan_query(&q.query, &q.key_positions, &q.attr_positions, dynamics))
            .collect()
    }

    fn scan_query(
        &self,
        query: &Query,
        key_positions: &[Option<usize>],
        attr_positions: &FxHashMap<AttrId, Option<usize>>,
        dynamics: &DynamicRegistry,
    ) -> BaselineResult {
        // Resolve every touched attribute to its typed column handle once, so
        // the scan performs no per-row hash probes or schema lookups.
        let key_cols: Vec<Option<&Column>> = key_positions
            .iter()
            .map(|p| p.map(|col| self.join.column(col)))
            .collect();
        let attr_cols: FxHashMap<AttrId, Option<&Column>> = attr_positions
            .iter()
            .map(|(&a, p)| (a, p.map(|col| self.join.column(col))))
            .collect();
        let mut data: FxHashMap<Vec<Value>, Vec<f64>> = FxHashMap::default();
        for row in 0..self.join.len() {
            // Attributes outside the resolved set (none for well-formed
            // queries) fall back to a live schema lookup.
            let lookup = |a: AttrId| {
                let col = match attr_cols.get(&a) {
                    Some(resolved) => *resolved,
                    None => self.join.position(a).map(|c| self.join.column(c)),
                };
                match col {
                    Some(col) => col.value(row),
                    None => Value::Null,
                }
            };
            let key: Vec<Value> = key_cols
                .iter()
                .map(|c| match c {
                    Some(col) => col.value(row),
                    None => Value::Null,
                })
                .collect();
            let entry = data
                .entry(key)
                .or_insert_with(|| vec![0.0; query.aggregates.len()]);
            for (i, agg) in query.aggregates.iter().enumerate() {
                entry[i] += agg.evaluate(&lookup, dynamics);
            }
        }
        BaselineResult {
            group_by: query.group_by.clone(),
            data,
        }
    }
}

/// One query with every column it touches pre-resolved against the join.
#[derive(Debug, Clone)]
struct PreparedBaselineQuery {
    query: Query,
    /// Position of every group-by attribute in the join (None for attributes
    /// absent from the join — their key component is Null).
    key_positions: Vec<Option<usize>>,
    /// Position of every attribute any aggregate reads.
    attr_positions: FxHashMap<AttrId, Option<usize>>,
}

/// A batch with all per-query schema lookups resolved, ready for repeated
/// execution against the same materialized join.
#[derive(Debug, Clone)]
pub struct PreparedBaselineBatch {
    queries: Vec<PreparedBaselineQuery>,
}

impl PreparedBaselineBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the batch holds no query.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrType, DatabaseSchema, RelationSchema};
    use lmfao_expr::Aggregate;
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "R",
            &[
                ("a", AttrType::Int),
                ("b", AttrType::Int),
                ("x", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("y", AttrType::Double)]);
        let a = schema.attr_id("a").unwrap();
        let b = schema.attr_id("b").unwrap();
        let x = schema.attr_id("x").unwrap();
        let y = schema.attr_id("y").unwrap();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![a, b, x]),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Double(2.0)],
                vec![Value::Int(2), Value::Int(1), Value::Double(3.0)],
                vec![Value::Int(3), Value::Int(2), Value::Double(4.0)],
                vec![Value::Int(4), Value::Int(9), Value::Double(5.0)],
            ],
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![b, y]),
            vec![
                vec![Value::Int(1), Value::Double(10.0)],
                vec![Value::Int(2), Value::Double(20.0)],
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![r, s]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    #[test]
    fn join_materialization_drops_dangling_tuples() {
        let (db, tree) = db_and_tree();
        let engine = MaterializedEngine::materialize(&db, &tree);
        // (4, 9, 5.0) has no matching S tuple.
        assert_eq!(engine.join().len(), 3);
        assert!(engine.join_size_bytes() > 0);
    }

    #[test]
    fn scalar_aggregates_over_the_join() {
        let (db, tree) = db_and_tree();
        let x = db.schema().attr_id("x").unwrap();
        let y = db.schema().attr_id("y").unwrap();
        let engine = MaterializedEngine::materialize(&db, &tree);
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sxy", vec![], vec![Aggregate::sum_product(x, y)]);
        let res = engine.execute_batch(&batch, &DynamicRegistry::new());
        assert_eq!(res[0].scalar(1)[0], 3.0);
        assert_eq!(res[1].scalar(1)[0], 2.0 * 10.0 + 3.0 * 10.0 + 4.0 * 20.0);
    }

    #[test]
    fn group_by_aggregates_over_the_join() {
        let (db, tree) = db_and_tree();
        let b = db.schema().attr_id("b").unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let engine = MaterializedEngine::materialize(&db, &tree);
        let mut batch = QueryBatch::new();
        batch.push(
            "per_b",
            vec![b],
            vec![Aggregate::sum(x), Aggregate::count()],
        );
        let res = engine.execute_batch(&batch, &DynamicRegistry::new());
        assert_eq!(res[0].len(), 2);
        assert_eq!(res[0].get(&[Value::Int(1)]).unwrap(), &[5.0, 2.0]);
        assert_eq!(res[0].get(&[Value::Int(2)]).unwrap(), &[4.0, 1.0]);
        assert!(!res[0].is_empty());
    }

    #[test]
    fn prepared_baseline_batch_matches_direct_execution() {
        let (db, tree) = db_and_tree();
        let b = db.schema().attr_id("b").unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let engine = MaterializedEngine::materialize(&db, &tree);
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("per_b", vec![b], vec![Aggregate::sum(x)]);
        let prepared = engine.prepare(&batch);
        assert_eq!(prepared.len(), 2);
        assert!(!prepared.is_empty());
        let dynamics = DynamicRegistry::new();
        let via_prepared = engine.execute_prepared(&prepared, &dynamics);
        let direct = engine.execute_batch(&batch, &dynamics);
        for (p, d) in via_prepared.iter().zip(&direct) {
            assert_eq!(p.data, d.data);
        }
    }

    #[test]
    fn empty_join_gives_zero_scalars() {
        let (mut db, tree) = db_and_tree();
        let schema = db.relation("S").unwrap().schema().clone();
        *db.relation_mut("S").unwrap() = Relation::new(schema);
        let engine = MaterializedEngine::materialize(&db, &tree);
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        let res = engine.execute_batch(&batch, &DynamicRegistry::new());
        assert_eq!(res[0].scalar(1)[0], 0.0);
    }
}
