//! Materialize-then-learn baselines.
//!
//! The structure-agnostic competitors of the paper (TensorFlow, scikit-learn,
//! MADlib over a materialized view, R) all require the training dataset — the
//! result of the feature extraction join — to be materialized, shuffled and
//! one-hot encoded before any learning happens. This module reproduces that
//! pipeline: export the join to a dense matrix with one-hot encoded
//! categorical features, then run gradient-descent linear regression or CART
//! decision trees over the matrix. Its cost (dominated by the
//! materialization) is what Tables 4 and 5 compare LMFAO against.

use lmfao_data::{AttrId, AttrType, DatabaseSchema, Relation, Value};

/// A dense training dataset: one row per join tuple, one column per
/// (one-hot-encoded) feature, plus the label vector.
#[derive(Debug, Clone)]
pub struct DenseDataset {
    /// Feature matrix, row major.
    pub features: Vec<Vec<f64>>,
    /// Labels.
    pub labels: Vec<f64>,
    /// Human-readable name of every feature column.
    pub feature_names: Vec<String>,
}

impl DenseDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }
}

/// Exports a materialized join into a dense matrix, one-hot encoding
/// categorical features — the step that dominates the baseline pipelines and
/// that LMFAO avoids entirely.
pub fn export_dense(
    join: &Relation,
    schema: &DatabaseSchema,
    features: &[AttrId],
    label: AttrId,
) -> DenseDataset {
    // Collect categorical domains first.
    let mut columns: Vec<(AttrId, Vec<Value>)> = Vec::new();
    let mut feature_names = Vec::new();
    for &attr in features {
        let ty = schema.attr_type(attr);
        if ty == AttrType::Categorical {
            let col = join.position(attr).expect("feature must be a join column");
            let mut domain = join.distinct_values(col);
            domain.sort();
            for v in &domain {
                feature_names.push(format!("{}={}", schema.attr_name(attr), v));
            }
            columns.push((attr, domain));
        } else {
            feature_names.push(schema.attr_name(attr).to_string());
            columns.push((attr, Vec::new()));
        }
    }

    let label_col = join.position(label).expect("label must be a join column");
    // Resolve each feature to its typed column handle once; the export loop
    // reads native values with no per-row schema lookups.
    let feature_cols: Vec<(&lmfao_data::Column, &Vec<Value>)> = columns
        .iter()
        .map(|(attr, domain)| (join.column(join.position(*attr).unwrap()), domain))
        .collect();
    let label_column = join.column(label_col);
    let mut features_out = Vec::with_capacity(join.len());
    let mut labels = Vec::with_capacity(join.len());
    for row in 0..join.len() {
        let mut x = Vec::with_capacity(feature_names.len());
        for (col, domain) in &feature_cols {
            if domain.is_empty() {
                x.push(col.f64_at(row));
            } else {
                let v = col.value(row);
                for d in *domain {
                    x.push(if v == *d { 1.0 } else { 0.0 });
                }
            }
        }
        features_out.push(x);
        labels.push(label_column.f64_at(row));
    }
    DenseDataset {
        features: features_out,
        labels,
        feature_names,
    }
}

/// Batch-gradient-descent ridge linear regression over a dense dataset (the
/// TensorFlow/scikit proxy: every epoch is a full pass over the materialized
/// training data).
pub fn train_linear_regression_dense(
    data: &DenseDataset,
    l2: f64,
    learning_rate: f64,
    epochs: usize,
) -> Vec<f64> {
    let n = data.len().max(1) as f64;
    let d = data.num_features();
    let mut theta = vec![0.0; d + 1]; // + intercept at index 0
    for _ in 0..epochs {
        let mut grad = vec![0.0; d + 1];
        for (x, &y) in data.features.iter().zip(&data.labels) {
            let pred = theta[0] + x.iter().zip(&theta[1..]).map(|(a, b)| a * b).sum::<f64>();
            let err = pred - y;
            grad[0] += err;
            for (g, xi) in grad[1..].iter_mut().zip(x) {
                *g += err * xi;
            }
        }
        for (j, t) in theta.iter_mut().enumerate() {
            let reg = if j == 0 { 0.0 } else { l2 * *t };
            *t -= learning_rate * (grad[j] / n + reg);
        }
    }
    theta
}

/// Predicts with a parameter vector produced by
/// [`train_linear_regression_dense`].
pub fn predict_linear(theta: &[f64], x: &[f64]) -> f64 {
    theta[0] + x.iter().zip(&theta[1..]).map(|(a, b)| a * b).sum::<f64>()
}

/// Root-mean-square error of a linear model over a dense dataset.
pub fn rmse_linear(theta: &[f64], data: &DenseDataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let sse: f64 = data
        .features
        .iter()
        .zip(&data.labels)
        .map(|(x, &y)| {
            let e = predict_linear(theta, x) - y;
            e * e
        })
        .sum();
    (sse / data.len() as f64).sqrt()
}

/// A node of a CART tree learned over the dense matrix.
#[derive(Debug, Clone)]
pub enum DenseTreeNode {
    /// Leaf with a prediction (mean label for regression, majority class for
    /// classification).
    Leaf(f64),
    /// Inner split `feature <= threshold`.
    Split {
        /// Feature column index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for rows with `feature <= threshold`.
        left: Box<DenseTreeNode>,
        /// Subtree for the remaining rows.
        right: Box<DenseTreeNode>,
    },
}

impl DenseTreeNode {
    /// Predicts the label of a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        match self {
            DenseTreeNode::Leaf(v) => *v,
            DenseTreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            DenseTreeNode::Leaf(_) => 1,
            DenseTreeNode::Split { left, right, .. } => 1 + left.size() + right.size(),
        }
    }
}

/// Learning task for the dense CART baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseTask {
    /// Minimize label variance (regression tree).
    Regression,
    /// Minimize Gini impurity of a binary/categorical label (classification).
    Classification,
}

fn impurity(labels: &[f64], rows: &[usize], task: DenseTask) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    match task {
        DenseTask::Regression => {
            let n = rows.len() as f64;
            let sum: f64 = rows.iter().map(|&r| labels[r]).sum();
            let sum_sq: f64 = rows.iter().map(|&r| labels[r] * labels[r]).sum();
            sum_sq - sum * sum / n
        }
        DenseTask::Classification => {
            let n = rows.len() as f64;
            let mut counts: std::collections::BTreeMap<i64, usize> =
                std::collections::BTreeMap::new();
            for &r in rows {
                *counts.entry(labels[r] as i64).or_default() += 1;
            }
            let gini = 1.0
                - counts
                    .values()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum::<f64>();
            gini * n
        }
    }
}

fn leaf_value(labels: &[f64], rows: &[usize], task: DenseTask) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    match task {
        DenseTask::Regression => rows.iter().map(|&r| labels[r]).sum::<f64>() / rows.len() as f64,
        DenseTask::Classification => {
            let mut counts: std::collections::BTreeMap<i64, usize> =
                std::collections::BTreeMap::new();
            for &r in rows {
                *counts.entry(labels[r] as i64).or_default() += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(_, c)| c)
                .map(|(v, _)| v as f64)
                .unwrap_or(0.0)
        }
    }
}

/// Learns a CART tree over the dense matrix by exhaustive threshold search
/// (the behaviour of the materialized baselines: every node re-scans its
/// fragment of the materialized dataset for every candidate split).
pub fn train_tree_dense(
    data: &DenseDataset,
    task: DenseTask,
    max_depth: usize,
    min_samples: usize,
    buckets: usize,
) -> DenseTreeNode {
    let rows: Vec<usize> = (0..data.len()).collect();
    grow(data, &rows, task, max_depth, min_samples, buckets)
}

fn grow(
    data: &DenseDataset,
    rows: &[usize],
    task: DenseTask,
    depth: usize,
    min_samples: usize,
    buckets: usize,
) -> DenseTreeNode {
    if depth == 0 || rows.len() < min_samples {
        return DenseTreeNode::Leaf(leaf_value(&data.labels, rows, task));
    }
    let parent_cost = impurity(&data.labels, rows, task);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, cost)
    for f in 0..data.num_features() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in rows {
            lo = lo.min(data.features[r][f]);
            hi = hi.max(data.features[r][f]);
        }
        if lo >= hi {
            continue;
        }
        for b in 1..=buckets {
            let t = lo + (hi - lo) * b as f64 / (buckets + 1) as f64;
            let (left, right): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&r| data.features[r][f] <= t);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let cost = impurity(&data.labels, &left, task) + impurity(&data.labels, &right, task);
            if best.as_ref().is_none_or(|&(_, _, c)| cost < c) {
                best = Some((f, t, cost));
            }
        }
    }
    match best {
        Some((feature, threshold, cost)) if cost < parent_cost => {
            let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                .iter()
                .partition(|&&r| data.features[r][feature] <= threshold);
            DenseTreeNode::Split {
                feature,
                threshold,
                left: Box::new(grow(
                    data,
                    &left_rows,
                    task,
                    depth - 1,
                    min_samples,
                    buckets,
                )),
                right: Box::new(grow(
                    data,
                    &right_rows,
                    task,
                    depth - 1,
                    min_samples,
                    buckets,
                )),
            }
        }
        _ => DenseTreeNode::Leaf(leaf_value(&data.labels, rows, task)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::RelationSchema;

    fn dataset() -> DenseDataset {
        // y = 2*x0 + noiseless; x1 is irrelevant.
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let labels: Vec<f64> = features.iter().map(|x| 2.0 * x[0]).collect();
        DenseDataset {
            features,
            labels,
            feature_names: vec!["x0".into(), "x1".into()],
        }
    }

    #[test]
    fn linear_regression_recovers_the_slope() {
        let data = dataset();
        let theta = train_linear_regression_dense(&data, 0.0, 0.0005, 5_000);
        assert!((theta[1] - 2.0).abs() < 0.1, "slope {theta:?}");
        assert!(rmse_linear(&theta, &data) < 2.0);
    }

    #[test]
    fn regression_tree_splits_on_the_informative_feature() {
        let data = dataset();
        let tree = train_tree_dense(&data, DenseTask::Regression, 3, 2, 8);
        assert!(tree.size() > 1);
        if let DenseTreeNode::Split { feature, .. } = &tree {
            assert_eq!(*feature, 0);
        } else {
            panic!("expected a split at the root");
        }
        // Predictions follow the trend.
        assert!(tree.predict(&[5.0, 0.0]) < tree.predict(&[45.0, 0.0]));
    }

    #[test]
    fn classification_tree_separates_classes() {
        let features: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let data = DenseDataset {
            features,
            labels,
            feature_names: vec!["x".into()],
        };
        let tree = train_tree_dense(&data, DenseTask::Classification, 2, 2, 10);
        assert_eq!(tree.predict(&[3.0]), 0.0);
        assert_eq!(tree.predict(&[35.0]), 1.0);
    }

    #[test]
    fn export_one_hot_encodes_categoricals() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "J",
            &[
                ("city", AttrType::Categorical),
                ("x", AttrType::Double),
                ("y", AttrType::Double),
            ],
        );
        let city = schema.attr_id("city").unwrap();
        let x = schema.attr_id("x").unwrap();
        let y = schema.attr_id("y").unwrap();
        let join = Relation::from_rows(
            RelationSchema::new("J", vec![city, x, y]),
            vec![
                vec![Value::Cat(0), Value::Double(1.0), Value::Double(5.0)],
                vec![Value::Cat(1), Value::Double(2.0), Value::Double(6.0)],
                vec![Value::Cat(0), Value::Double(3.0), Value::Double(7.0)],
            ],
        )
        .unwrap();
        let data = export_dense(&join, &schema, &[city, x], y);
        // city has 2 categories → 2 one-hot columns + 1 continuous column.
        assert_eq!(data.num_features(), 3);
        assert_eq!(data.len(), 3);
        assert_eq!(data.features[0], vec![1.0, 0.0, 1.0]);
        assert_eq!(data.features[1], vec![0.0, 1.0, 2.0]);
        assert_eq!(data.labels, vec![5.0, 6.0, 7.0]);
    }
}
