//! Recompute-from-scratch reference for incremental maintenance.
//!
//! The maintenance layer (`lmfao_core::maintain`) claims that applying a
//! [`TableDelta`] to a [`lmfao_core::MaintainedBatch`] leaves it in the same
//! state as recomputing the whole batch over the updated database. This
//! module is the referee: a [`RecomputeReference`] tracks the same update
//! stream but answers every query by building a **fresh engine** over its
//! copy of the database and re-running the full batch — no retained state, no
//! deltas, no shortcuts. Tests drive both sides with identical streams and
//! compare results (exactly for integer-valued aggregates, within float
//! tolerance otherwise, since float addition is not associative).

use lmfao_core::{BatchResult, Engine, EngineConfig, EngineError, ViewSnapshot};
use lmfao_data::{Database, TableDelta};
use lmfao_expr::QueryBatch;
use lmfao_jointree::JoinTree;

/// The from-scratch referee of incremental maintenance: applies the same
/// deltas, recomputes everything on demand.
#[derive(Debug, Clone)]
pub struct RecomputeReference {
    db: Database,
    tree: JoinTree,
    config: EngineConfig,
    batch: QueryBatch,
}

impl RecomputeReference {
    /// Creates a reference over its own copy of the database.
    pub fn new(db: Database, tree: JoinTree, config: EngineConfig, batch: QueryBatch) -> Self {
        RecomputeReference {
            db,
            tree,
            config,
            batch,
        }
    }

    /// Creates a reference pinned to a published serving generation: the
    /// database state is materialized from the snapshot's
    /// [`lmfao_data::DatabaseSnapshot`], and the join tree and configuration
    /// are taken from the plans the snapshot was computed under. Recomputing
    /// then audits exactly what readers of that generation were answered
    /// from — however many generations the writer has published since.
    pub fn for_snapshot(snapshot: &ViewSnapshot, batch: QueryBatch) -> Self {
        RecomputeReference::new(
            snapshot.database().materialize(),
            snapshot.join_tree().clone(),
            *snapshot.config(),
            batch,
        )
    }

    /// Applies a delta to the reference's database (same sorted-merge
    /// semantics as the maintained side — the updated relations are
    /// identical multisets).
    pub fn apply(&mut self, delta: &TableDelta) -> Result<(), EngineError> {
        self.db.relation_mut(delta.relation())?.apply(delta)?;
        Ok(())
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Recomputes the full batch from scratch: fresh statistics, fresh sort,
    /// fresh plans, fresh scans. Deliberately pays the full price every call.
    pub fn recompute(&self) -> Result<BatchResult, EngineError> {
        Engine::new(self.db.clone(), self.tree.clone(), self.config).execute(&self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrId, AttrType, DatabaseSchema, Relation, RelationSchema, Value};
    use lmfao_expr::Aggregate;
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn setup() -> (Database, JoinTree, QueryBatch) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("R", &[("a", AttrType::Int), ("x", AttrType::Double)]);
        schema.add_relation_with_attrs("S", &[("a", AttrType::Int), ("y", AttrType::Double)]);
        let ids: Vec<AttrId> = ["a", "x", "y"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![ids[0], ids[1]]),
            (0..10)
                .map(|i| vec![Value::Int(i % 3), Value::Double(i as f64)])
                .collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![ids[0], ids[2]]),
            (0..3)
                .map(|i| vec![Value::Int(i), Value::Double((10 * i) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![r, s]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("xy", vec![], vec![Aggregate::sum_product(ids[1], ids[2])]);
        (db, tree, batch)
    }

    #[test]
    fn recompute_tracks_applied_deltas() {
        let (db, tree, batch) = setup();
        let mut reference =
            RecomputeReference::new(db.clone(), tree, EngineConfig::default(), batch);
        let before = reference.recompute().unwrap().query("count").scalar()[0];
        let mut delta = TableDelta::for_relation(db.relation("R").unwrap());
        delta.insert(&[Value::Int(0), Value::Double(99.0)]).unwrap();
        reference.apply(&delta).unwrap();
        let after = reference.recompute().unwrap().query("count").scalar()[0];
        assert_eq!(after, before + 1.0);
        assert_eq!(reference.database().relation("R").unwrap().len(), 11);
    }

    #[test]
    fn snapshot_pinned_reference_audits_its_own_generation() {
        use lmfao_expr::DynamicRegistry;
        let (db, tree, batch) = setup();
        let mut writer = lmfao_core::Engine::new(db.clone(), tree, EngineConfig::default())
            .prepare(&batch)
            .unwrap()
            .into_serving(&DynamicRegistry::new())
            .unwrap();
        let pinned = writer.snapshot();
        // The writer moves on; the pinned generation must still audit clean.
        let mut delta = TableDelta::for_relation(db.relation("R").unwrap());
        delta.insert(&[Value::Int(1), Value::Double(50.0)]).unwrap();
        writer.commit(&delta, &DynamicRegistry::new()).unwrap();

        let reference = RecomputeReference::for_snapshot(&pinned, batch.clone());
        let audited = reference.recompute().unwrap();
        for (got, want) in pinned.results().queries.iter().zip(&audited.queries) {
            assert_eq!(got.data, want.data, "query {}", got.name);
        }
        // And a reference for the *new* generation sees the delta.
        let now = RecomputeReference::for_snapshot(&writer.snapshot(), batch);
        assert_eq!(
            now.recompute().unwrap().query("count").scalar()[0],
            audited.query("count").scalar()[0] + 1.0
        );
    }

    #[test]
    fn bad_delta_is_rejected() {
        let (db, tree, batch) = setup();
        let mut reference = RecomputeReference::new(db, tree, EngineConfig::default(), batch);
        let mut delta = TableDelta::new(RelationSchema::new("Nope", vec![AttrId(0)]));
        delta.insert(&[Value::Int(1)]).unwrap();
        assert!(reference.apply(&delta).is_err());
    }
}
