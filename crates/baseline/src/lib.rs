//! # lmfao-baseline
//!
//! Baselines reproducing the evaluation strategy of the systems the LMFAO
//! paper compares against:
//!
//! * [`naive::MaterializedEngine`] — materialize the natural join, then
//!   compute every aggregate query separately over it (the PostgreSQL /
//!   MonetDB / DBX proxy for Table 3);
//! * [`ml`] — materialize-then-learn pipelines: export the join to a dense
//!   one-hot matrix and train linear regression or CART trees over it (the
//!   TensorFlow / MADlib / scikit proxy for Tables 4 and 5);
//! * [`refresh::RecomputeReference`] — the recompute-from-scratch referee of
//!   incremental maintenance: applies the same update stream as a
//!   `MaintainedBatch` but answers by re-planning and re-scanning everything.

#![warn(missing_docs)]

pub mod ml;
pub mod naive;
pub mod refresh;

pub use ml::{
    export_dense, predict_linear, rmse_linear, train_linear_regression_dense, train_tree_dense,
    DenseDataset, DenseTask, DenseTreeNode,
};
pub use naive::{BaselineResult, MaterializedEngine, PreparedBaselineBatch};
pub use refresh::RecomputeReference;
