//! Generation of strings matching a small regex subset.
//!
//! Real proptest treats `&str` strategies as regexes over the full regex
//! syntax. This offline subset supports what property tests here use:
//! literal characters, character classes `[a-z0-9_]` (ranges and singletons,
//! no negation), and the repetition operators `{m}`, `{m,n}`, `?`, `*`, `+`
//! (the unbounded ones capped at 8 repetitions). Anything else panics with a
//! clear message so unsupported patterns fail loudly, not wrongly.

use crate::test_runner::TestRng;

/// Cap for `*` / `+` repetitions, which are unbounded in real regexes.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex `{pattern}`"));
                    if lo == ']' {
                        break;
                    }
                    assert!(
                        lo != '^',
                        "negated classes are not supported in regex `{pattern}`"
                    );
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in regex `{pattern}`"));
                        assert!(
                            hi != ']' && lo <= hi,
                            "bad range in class of regex `{pattern}`"
                        );
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in regex `{pattern}`");
                Atom::Class(ranges)
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("trailing backslash in regex `{pattern}`"));
                match escaped {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    '\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '*' | '+' | '?' | '|'
                    | '^' | '$' | '-' => Atom::Literal(escaped),
                    other => panic!("unsupported escape `\\{other}` in regex `{pattern}`"),
                }
            }
            '.' | '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex feature `{c}` in `{pattern}` (offline proptest subset)")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                let parse_u32 = |s: &str| {
                    s.parse::<u32>()
                        .unwrap_or_else(|_| panic!("bad repetition `{{{spec}}}` in `{pattern}`"))
                };
                match spec.split_once(',') {
                    Some((m, n)) => (parse_u32(m), parse_u32(n)),
                    None => {
                        let m = parse_u32(&spec);
                        (m, m)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repetition bounds in regex `{pattern}`");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let size = hi as u64 - lo as u64 + 1;
        if pick < size {
            return char::from_u32(lo as u32 + pick as u32)
                .expect("class ranges contain valid chars");
        }
        pick -= size;
    }
    unreachable!("pick is below the total class size")
}

/// Generates a string matching `pattern` (within the supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_class_with_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..300 {
            let s = generate_matching("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literals_classes_and_operators() {
        let mut rng = TestRng::new(8);
        let s = generate_matching("ab[0-9]{3}", &mut rng);
        assert!(s.starts_with("ab") && s.len() == 5);
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
        for _ in 0..100 {
            let t = generate_matching("x?y+z*", &mut rng);
            assert!(t.contains('y'));
        }
        let d = generate_matching(r"\d{2}", &mut rng);
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn unsupported_features_fail_loudly() {
        let mut rng = TestRng::new(9);
        generate_matching("(a|b)", &mut rng);
    }
}
