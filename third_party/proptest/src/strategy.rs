//! The [`Strategy`] trait and its implementations for ranges, tuples and
//! regex-subset string literals.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Real proptest separates strategies from value trees to support shrinking;
/// this offline subset generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can push the product up to exactly `end`; keep the bound
        // exclusive.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.next_f64() * (end - start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// String literals are regex strategies, as in real proptest (subset — see
/// [`crate::string`]).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let x = (0..5i64).generate(&mut rng);
            assert!((0..5).contains(&x));
            let f = (-3.0..3.0f64).generate(&mut rng);
            assert!((-3.0..3.0).contains(&f));
            let u = (0..4usize).generate(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = TestRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(0..4i64).generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (0..5i64, 0..4i64, -3.0..3.0f64).generate(&mut rng);
        assert!((0..5).contains(&a));
        assert!((0..4).contains(&b));
        assert!((-3.0..3.0).contains(&c));
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::new(4);
        assert_eq!(Just(41i32).generate(&mut rng), 41);
    }
}
