//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The admissible lengths of a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            start: exact,
            end_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            start: range.start,
            end_exclusive: range.end,
        }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end_exclusive - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = vec(0..10i64, 0..25).generate(&mut rng);
            assert!(v.len() < 25);
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
        let exact = vec(0..10i64, 7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::new(6);
        let v = vec((0..4i64, -2.0..2.0f64), 1..10).generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 10);
    }
}
