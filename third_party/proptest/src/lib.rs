//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait, with implementations for
//!   integer and float ranges, tuples, [`collection::vec`] and regex-subset
//!   string literals (`"[a-z]{1,8}"`-style),
//! * [`test_runner::Config`] (`ProptestConfig` in the prelude) with
//!   `with_cases`,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! cases are generated from a fixed seed (override with the `PROPTEST_SEED`
//! environment variable) and a failing case panics with the case number, so
//! runs are deterministic and reproducible by construction.

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod string;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Fails the current property-test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Fails the current property-test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs [$config] $($rest)*);
    };
    (@funcs [$config:expr]) => {};
    (@funcs [$config:expr]
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_env();
            for __case in 0..__config.cases {
                let __run = || {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                };
                if let Err(payload) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {})",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        $crate::test_runner::TestRng::seed_from_env(),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@funcs [$config] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs [$crate::test_runner::Config::default()] $($rest)*);
    };
}
