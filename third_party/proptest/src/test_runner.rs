//! Test-runner configuration and the deterministic RNG driving generation.

/// Configuration for a `proptest!` block (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Default seed when `PROPTEST_SEED` is not set. Fixed so `cargo test` is
/// deterministic run to run.
const DEFAULT_SEED: u64 = 0x5eed_1a0f_a0c0_ffee;

/// The deterministic generator behind all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The seed in effect: `PROPTEST_SEED` if set and parseable, else the
    /// fixed default.
    pub fn seed_from_env() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED)
    }

    /// A generator seeded from the environment (or the fixed default).
    pub fn from_env() -> Self {
        TestRng::new(Self::seed_from_env())
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(3);
        let mut b = TestRng::new(3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn config_cases() {
        assert_eq!(Config::with_cases(64).cases, 64);
        assert_eq!(Config::default().cases, 256);
    }
}
