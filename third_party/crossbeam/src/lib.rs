//! Offline, API-compatible subset of the `crossbeam` crate: scoped threads.
//!
//! `crossbeam::scope` predates `std::thread::scope`; this stand-in delegates
//! to the standard library version and keeps crossbeam's call shape — the
//! spawn closure receives a (here unused) scope handle argument, and `scope`
//! returns a `Result` even though the std implementation cannot fail.

pub use thread::{scope, Scope, ScopedJoinHandle};

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    /// A scope handle passed to [`Scope::spawn`] closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope argument for
        /// crossbeam API compatibility; this stand-in passes `()` (nested
        /// spawning through the argument is not supported — no in-repo
        /// caller uses it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Creates a scope in which threads borrowing non-`'static` data can be
    /// spawned. Always returns `Ok`: unjoined panicked threads propagate
    /// their panic out of `std::thread::scope` instead of surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
