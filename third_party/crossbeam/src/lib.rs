//! Offline, API-compatible subset of the `crossbeam` crate: scoped threads
//! plus a hazard-pointer publication cell in the spirit of
//! `crossbeam-epoch`'s deferred reclamation.
//!
//! `crossbeam::scope` predates `std::thread::scope`; this stand-in delegates
//! to the standard library version and keeps crossbeam's call shape — the
//! spawn closure receives a (here unused) scope handle argument, and `scope`
//! returns a `Result` even though the std implementation cannot fail.
//!
//! [`hazard::HazardCell`] is the piece the real crossbeam provides through
//! `epoch::Atomic`: a shared cell holding an `Arc<T>` that readers can
//! acquire with a lock-free pointer protocol while a writer swaps in new
//! values and reclaims old ones once no reader still has them in flight.

pub use thread::{scope, Scope, ScopedJoinHandle};

/// Hazard-pointer protected publication cells (the offline stand-in for the
/// `crossbeam-epoch` reclamation machinery).
pub mod hazard {
    use std::cell::Cell;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One reader's hazard slot: the (type-erased) pointer its owner is in
    /// the middle of acquiring, or null when idle. Slots are pooled in the
    /// cell's registry and reused as handles come and go, so the registry
    /// size is bounded by the peak number of live handles.
    #[derive(Debug)]
    struct Slot {
        protected: AtomicPtr<()>,
        claimed: AtomicBool,
    }

    /// State shared by every handle of one cell: the published pointer (an
    /// `Arc::into_raw`, never null), the slot registry, and the retired list
    /// of superseded pointers not yet proven unprotected.
    struct Shared<T> {
        current: AtomicPtr<T>,
        slots: Mutex<Vec<Arc<Slot>>>,
        retired: Mutex<Vec<*mut T>>,
    }

    // Raw pointers into `Arc` allocations of `T`: moving or sharing them
    // across threads is exactly as safe as moving/sharing `Arc<T>` itself.
    unsafe impl<T: Send + Sync> Send for Shared<T> {}
    unsafe impl<T: Send + Sync> Sync for Shared<T> {}

    impl<T> Drop for Shared<T> {
        fn drop(&mut self) {
            // The last handle is gone: no `load` can race this, so the
            // published value and everything still parked on the retired
            // list release their cell-owned strong counts.
            let current = *self.current.get_mut();
            unsafe { drop(Arc::from_raw(current)) };
            for &p in lock(&self.retired).iter() {
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }

    /// A shared cell publishing an `Arc<T>` with lock-free reads.
    ///
    /// Each handle (the initial one and every clone) owns a private hazard
    /// slot, which is what makes [`HazardCell::load`] sound without any lock
    /// on the read path — and why the type is `Send` but deliberately **not**
    /// `Sync`: two threads racing `load` through one handle would share one
    /// slot. Clone a handle per thread instead (a registry lock is taken at
    /// clone time, never per read).
    ///
    /// [`HazardCell::publish`] swaps the pointer, retires the old value and
    /// reclaims every retired value no slot currently protects. A reader that
    /// already upgraded its pointer to an `Arc` does not block reclamation of
    /// *the cell's* reference — its own `Arc` keeps the value alive — so the
    /// retired list length is bounded by the number of handles.
    pub struct HazardCell<T: Send + Sync> {
        shared: Arc<Shared<T>>,
        slot: Arc<Slot>,
        /// `!Sync` marker: one hazard slot serves one thread at a time.
        _not_sync: PhantomData<Cell<()>>,
    }

    impl<T: Send + Sync> HazardCell<T> {
        /// A new cell publishing `initial`.
        pub fn new(initial: Arc<T>) -> Self {
            let shared = Arc::new(Shared {
                current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
                slots: Mutex::new(Vec::new()),
                retired: Mutex::new(Vec::new()),
            });
            let slot = claim_slot(&shared);
            HazardCell {
                shared,
                slot,
                _not_sync: PhantomData,
            }
        }

        /// Acquires the currently published value. Lock-free: the only
        /// retry is a concurrent `publish` swapping the pointer between the
        /// hazard announcement and its validation, so a retry implies
        /// system-wide progress.
        ///
        /// Protocol (the classic hazard-pointer handshake): read the
        /// pointer, announce it in this handle's slot, then re-read the
        /// cell. If the cell still holds the pointer, the announcement
        /// became visible before any later `publish` could have scanned the
        /// slots — so the value cannot have been reclaimed and its strong
        /// count can be bumped. (A swap back to the same address between
        /// the two reads only ever exposes a *newer* published value that
        /// reuses the allocation, which is just as valid.)
        pub fn load(&self) -> Arc<T> {
            loop {
                let p = self.shared.current.load(Ordering::Acquire);
                self.slot.protected.store(p as *mut (), Ordering::SeqCst);
                if self.shared.current.load(Ordering::SeqCst) == p {
                    // Validated: `p` is protected until the slot clears.
                    let arc = unsafe {
                        Arc::increment_strong_count(p);
                        Arc::from_raw(p)
                    };
                    self.slot
                        .protected
                        .store(ptr::null_mut(), Ordering::Release);
                    return arc;
                }
            }
        }

        /// Publishes `next`, retires the superseded value, and reclaims
        /// every retired value that no hazard slot currently protects.
        /// Reclamation scans the slot registry under the writer-side
        /// mutexes; readers never take them.
        pub fn publish(&self, next: Arc<T>) {
            let fresh = Arc::into_raw(next) as *mut T;
            let old = self.shared.current.swap(fresh, Ordering::SeqCst);
            let mut retired = lock(&self.shared.retired);
            retired.push(old);
            let slots = lock(&self.shared.slots);
            retired.retain(|&p| {
                let protected = slots
                    .iter()
                    .any(|s| s.protected.load(Ordering::SeqCst) == p as *mut ());
                if !protected {
                    // Release the strong count this retired entry owns. A
                    // reader that validated `p` either already bumped the
                    // count (its own `Arc` keeps the value alive) or its
                    // slot still announces `p` and the entry stays parked.
                    unsafe { drop(Arc::from_raw(p)) };
                }
                protected
            });
        }
    }

    impl<T: Send + Sync> Clone for HazardCell<T> {
        /// A new handle over the same cell with its own hazard slot
        /// (reusing a released one when available).
        fn clone(&self) -> Self {
            HazardCell {
                shared: Arc::clone(&self.shared),
                slot: claim_slot(&self.shared),
                _not_sync: PhantomData,
            }
        }
    }

    impl<T: Send + Sync> Drop for HazardCell<T> {
        fn drop(&mut self) {
            self.slot.protected.store(ptr::null_mut(), Ordering::SeqCst);
            self.slot.claimed.store(false, Ordering::SeqCst);
        }
    }

    impl<T: Send + Sync> fmt::Debug for HazardCell<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("HazardCell")
                .field("current", &self.shared.current.load(Ordering::Relaxed))
                .finish_non_exhaustive()
        }
    }

    fn claim_slot<T>(shared: &Shared<T>) -> Arc<Slot> {
        let mut slots = lock(&shared.slots);
        if let Some(slot) = slots
            .iter()
            .find(|s| !s.claimed.swap(true, Ordering::SeqCst))
        {
            return Arc::clone(slot);
        }
        let slot = Arc::new(Slot {
            protected: AtomicPtr::new(ptr::null_mut()),
            claimed: AtomicBool::new(true),
        });
        slots.push(Arc::clone(&slot));
        slot
    }
}

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    /// A scope handle passed to [`Scope::spawn`] closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope argument for
        /// crossbeam API compatibility; this stand-in passes `()` (nested
        /// spawning through the argument is not supported — no in-repo
        /// caller uses it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Creates a scope in which threads borrowing non-`'static` data can be
    /// spawned. Always returns `Ok`: unjoined panicked threads propagate
    /// their panic out of `std::thread::scope` instead of surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::hazard::HazardCell;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Counts live instances so the tests can assert reclamation.
    struct Tracked {
        value: u64,
        live: Arc<AtomicUsize>,
    }

    impl Tracked {
        fn new(value: u64, live: &Arc<AtomicUsize>) -> Arc<Self> {
            live.fetch_add(1, Ordering::SeqCst);
            Arc::new(Tracked {
                value,
                live: Arc::clone(live),
            })
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn hazard_cell_load_returns_the_published_value() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = HazardCell::new(Tracked::new(1, &live));
        assert_eq!(cell.load().value, 1);
        cell.publish(Tracked::new(2, &live));
        assert_eq!(cell.load().value, 2);
        assert_eq!(cell.load().value, cell.clone().load().value);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "all values reclaimed");
    }

    #[test]
    fn hazard_cell_pins_survive_later_publications() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = HazardCell::new(Tracked::new(0, &live));
        let pinned = cell.load();
        for v in 1..=100 {
            cell.publish(Tracked::new(v, &live));
        }
        assert_eq!(pinned.value, 0, "the pin outlives every publication");
        assert_eq!(cell.load().value, 100);
        // Only the pin and the current value can still be alive: the cell
        // reclaimed the 99 unpinned intermediates as it went.
        assert_eq!(live.load(Ordering::SeqCst), 2);
        drop(pinned);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn hazard_cell_concurrent_loads_see_monotonic_values_and_reclaim() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = HazardCell::new(Tracked::new(0, &live));
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = cell.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = reader.load().value;
                        assert!(v >= last, "published values only move forward");
                        last = v;
                    }
                });
            }
            for v in 1..=10_000u64 {
                cell.publish(Tracked::new(v, &live));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.load().value, 10_000);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "nothing leaked");
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
