//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! Implements exactly what this workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`] (over `Range` / `RangeInclusive` of the primitive
//! integer types and `f64`), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64:
//! deterministic per seed, statistically solid for test-data generation, but
//! not the same stream as the real `StdRng` (ChaCha12).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (always available in real
    /// `rand` regardless of the seed width of the algorithm).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly (`SampleRange` in real `rand`).
pub trait SampleRange<T> {
    /// Samples one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can push the product up to exactly `end`; keep the bound
        // exclusive as real `rand` guarantees.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// User-facing random-value methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`. Panics on empty ranges.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.gen_range(-8..-4i64);
            assert!((-8..-4).contains(&x));
            let y = rng.gen_range(1..=5i32);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(0.5..25.0f64);
            assert!((0.5..25.0).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(0..7usize);
            assert!(n < 7);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
