//! Offline, API-compatible subset of the `criterion` benchmark crate.
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], group configuration (`sample_size`,
//! `warm_up_time`, `measurement_time`), `bench_function` / `bench_with_input`
//! with [`BenchmarkId`], the [`Bencher::iter`] timing loop and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Unlike real criterion there is no statistical analysis, HTML report or
//! history; each benchmark runs a warm-up pass then `sample_size` timed
//! samples (bounded by `measurement_time`) and prints min / median / mean.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (only a substring filter argument
    /// is supported; `--bench`-style flags are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.to_string(), f);
        group.finish();
        self
    }
}

/// A named benchmark within a group, optionally parameterized.
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so bench entry points accept both
/// strings and explicit ids.
pub trait IntoBenchmarkId {
    /// Converts to the id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function_name: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function_name: Some(self),
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Bounds the total time spent taking samples.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = self.full_name(&id.into_benchmark_id());
        if self.is_selected(&full) {
            let mut bencher =
                Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
            f(&mut bencher);
            bencher.report(&full);
        }
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F, Inp>(&mut self, id: I, input: &Inp, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &Inp),
        Inp: ?Sized,
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn full_name(&self, id: &BenchmarkId) -> String {
        let tail = id.render();
        if self.name.is_empty() {
            tail
        } else if tail.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, tail)
        }
    }

    fn is_selected(&self, full_name: &str) -> bool {
        match &self.criterion.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            samples: Vec::new(),
        }
    }

    /// Times `routine`: warm-up passes until `warm_up_time` elapses, then up
    /// to `sample_size` timed samples bounded by `measurement_time`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let measurement_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if measurement_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<60} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples)",
            sorted.len()
        );
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).render(), "42");
        assert_eq!("plain".into_benchmark_id().render(), "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
