//! Incremental maintenance versus recompute-from-scratch.
//!
//! The referee is `lmfao_baseline::RecomputeReference`: both sides consume
//! the same reproducible update streams (`lmfao_datagen::update_stream`) on
//! all four paper datasets, the maintained side refreshing its retained
//! views, the reference re-planning and re-scanning everything. Results must
//! agree across the whole ablation ladder:
//!
//! * **bit-identically** for counts and for databases whose measures are
//!   integer-valued (float addition over integers within 2⁵³ is exact, so
//!   refresh and recompute produce the same bits);
//! * within a tight relative tolerance for arbitrary doubles (float addition
//!   is not associative, so `(Σ + x) − x` may differ from `Σ` in the last
//!   ulp — the documented caveat of `lmfao_core::maintain`).
//!
//! Ladder thread counts resolve through `EngineConfig::env_threads`, so CI's
//! thread-matrix job (`LMFAO_THREADS={1,4}`) runs these properties against
//! both the sequential path and the morsel scheduler.

use lmfao::baseline::RecomputeReference;
use lmfao::datagen::{self, fact_relation, update_stream, Scale, UpdateMix};
use lmfao::engine::{BatchResult, EngineConfig};
use lmfao::prelude::*;

/// Builds a small but representative batch for a dataset: COUNT, a sum, a
/// sum of squares, an indicator-guarded sum (the RT shape) and a group-by.
fn workload(ds: &Dataset) -> QueryBatch {
    let spec = lmfao_bench_spec(ds);
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("sum", vec![], vec![Aggregate::sum(spec.0)]);
    batch.push("sum_sq", vec![], vec![Aggregate::sum_square(spec.0)]);
    let cond = ScalarFunction::Indicator {
        attr: spec.0,
        op: CmpOp::Ge,
        threshold: lmfao::data::Value::Double(1.0),
    };
    batch.push(
        "rt_like",
        vec![],
        vec![Aggregate::product(
            ProductTerm::single(cond).times(ScalarFunction::Identity(spec.0)),
        )],
    );
    batch.push("per_cat", vec![spec.1], vec![Aggregate::sum(spec.0)]);
    batch
}

/// (continuous measure, group-by attribute) per dataset.
fn lmfao_bench_spec(ds: &Dataset) -> (AttrId, AttrId) {
    match ds.name.as_str() {
        "Retailer" => (ds.attr("inventoryunits"), ds.attr("category")),
        "Favorita" => (ds.attr("units"), ds.attr("family")),
        "Yelp" => (ds.attr("stars"), ds.attr("bcity")),
        "TPC-DS" => (ds.attr("quantity"), ds.attr("icategory")),
        other => panic!("unknown dataset {other}"),
    }
}

/// Compares two batch results value-wise (absent keys = all-zero aggregates).
/// `exact` demands bit equality; otherwise a 1e-9 relative tolerance.
/// Count queries are always compared exactly.
fn assert_agree(got: &BatchResult, want: &BatchResult, exact: bool, context: &str) {
    for (g, w) in got.queries.iter().zip(&want.queries) {
        assert_eq!(g.name, w.name, "{context}");
        let keys: std::collections::BTreeSet<_> = g.data.keys().chain(w.data.keys()).collect();
        let zeros = vec![0.0; g.num_aggregates];
        let force_exact = exact || g.name == "count";
        for key in keys {
            let gv = g.get(key).unwrap_or(&zeros);
            let wv = w.get(key).unwrap_or(&zeros);
            for (a, b) in gv.iter().zip(wv) {
                if force_exact {
                    assert_eq!(a, b, "{context}: query {} key {key:?}", g.name);
                } else {
                    assert!(
                        (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                        "{context}: query {} key {key:?}: {a} vs {b}",
                        g.name
                    );
                }
            }
        }
    }
}

/// The acceptance property: for random insert/delete streams on all four
/// datasets, maintained results equal full recompute across the ablation
/// ladder, at every step of the stream.
#[test]
fn maintained_batches_match_recompute_on_all_datasets_across_the_ladder() {
    let dynamics = DynamicRegistry::new();
    for ds in datagen::all_datasets(Scale::small()) {
        let batch = workload(&ds);
        let fact = fact_relation(&ds.name);
        // The generators round every continuous measure, so fact-table sums
        // are integer-valued and the comparison can be bit-strict.
        let stream = update_stream(&ds, fact, &UpdateMix::balanced(8).seed(11));
        for (name, cfg) in EngineConfig::ablation_ladder(EngineConfig::env_threads(2)) {
            let engine = Engine::new(ds.db.clone(), ds.tree.clone(), cfg);
            let mut maintained = engine
                .prepare(&batch)
                .unwrap()
                .into_maintained(&dynamics)
                .unwrap();
            let mut reference =
                RecomputeReference::new(ds.db.clone(), ds.tree.clone(), cfg, batch.clone());
            for (step, delta) in stream.iter().enumerate() {
                maintained.commit(delta, &dynamics).unwrap();
                reference.apply(delta).unwrap();
                let got = maintained.results().unwrap();
                let want = reference.recompute().unwrap();
                assert_agree(
                    &got,
                    &want,
                    false,
                    &format!("{}/{name} step {step}", ds.name),
                );
            }
            // Stream totals must also be reflected in the relation itself.
            assert_eq!(
                maintained.database().relation(fact).unwrap().len(),
                reference.database().relation(fact).unwrap().len(),
                "{}/{name}",
                ds.name
            );
        }
    }
}

/// Dimension-table streams exercise the propagation path (the changed
/// relation is *not* the one most groups scan).
#[test]
fn dimension_streams_propagate_correctly() {
    let dynamics = DynamicRegistry::new();
    let ds = datagen::retailer::generate(Scale::small());
    let batch = workload(&ds);
    let stream = update_stream(&ds, "Item", &UpdateMix::corrections(6).seed(5));
    let cfg = EngineConfig::default();
    let engine = Engine::new(ds.db.clone(), ds.tree.clone(), cfg);
    let mut maintained = engine
        .prepare(&batch)
        .unwrap()
        .into_maintained(&dynamics)
        .unwrap();
    let mut reference = RecomputeReference::new(ds.db.clone(), ds.tree.clone(), cfg, batch);
    for (step, delta) in stream.iter().enumerate() {
        maintained.commit(delta, &dynamics).unwrap();
        reference.apply(delta).unwrap();
        assert_agree(
            &maintained.results().unwrap(),
            &reference.recompute().unwrap(),
            false,
            &format!("Item step {step}"),
        );
    }
}

/// On an integer-valued database, maintained state is bit-identical to
/// recompute: integer sums within 2⁵³ are exact under float addition, so no
/// reassociation slack is needed.
#[test]
fn integer_valued_streams_are_bit_identical_to_recompute() {
    use lmfao::data::{AttrType, DatabaseSchema, RelationSchema, TableDelta, Value};
    use lmfao::jointree::{build_join_tree, Hypergraph};

    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "F",
        &[
            ("k", AttrType::Int),
            ("m", AttrType::Double),
            ("c", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs("D", &[("k", AttrType::Int), ("w", AttrType::Double)]);
    let ids: Vec<AttrId> = ["k", "m", "c", "w"]
        .iter()
        .map(|n| schema.attr_id(n).unwrap())
        .collect();
    let f = Relation::from_rows(
        RelationSchema::new("F", vec![ids[0], ids[1], ids[2]]),
        (0..200)
            .map(|i| {
                vec![
                    Value::Int(i % 8),
                    Value::Double((i % 23) as f64),
                    Value::Int(i % 3),
                ]
            })
            .collect(),
    )
    .unwrap();
    let d = Relation::from_rows(
        RelationSchema::new("D", vec![ids[0], ids[3]]),
        (0..8)
            .map(|i| vec![Value::Int(i), Value::Double((7 * (i + 1)) as f64)])
            .collect(),
    )
    .unwrap();
    let db = Database::new(schema.clone(), vec![f, d]).unwrap();
    let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();

    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("mw", vec![], vec![Aggregate::sum_product(ids[1], ids[3])]);
    batch.push("per_c", vec![ids[2]], vec![Aggregate::sum(ids[1])]);

    let dynamics = DynamicRegistry::new();
    for (name, cfg) in EngineConfig::ablation_ladder(EngineConfig::env_threads(2)) {
        let engine = Engine::new(db.clone(), tree.clone(), cfg);
        let mut maintained = engine
            .prepare(&batch)
            .unwrap()
            .into_maintained(&dynamics)
            .unwrap();
        let mut reference = RecomputeReference::new(db.clone(), tree.clone(), cfg, batch.clone());
        // A deterministic mixed stream, deletes always hitting live rows.
        for step in 0..10i64 {
            let mut delta = TableDelta::for_relation(db.relation("F").unwrap());
            if step % 3 == 2 {
                delta
                    .delete(&[
                        Value::Int(step % 8),
                        Value::Double((step % 23) as f64),
                        Value::Int(step % 3),
                    ])
                    .unwrap();
            } else {
                delta
                    .insert(&[
                        Value::Int(step % 8),
                        Value::Double((100 + step) as f64),
                        Value::Int(step % 3),
                    ])
                    .unwrap();
            }
            maintained.commit(&delta, &dynamics).unwrap();
            reference.apply(&delta).unwrap();
            assert_agree(
                &maintained.results().unwrap(),
                &reference.recompute().unwrap(),
                true,
                &format!("{name} step {step}"),
            );
        }
    }
}

/// The transactional acceptance property: a multi-relation transaction
/// committed in one DAG walk produces **bit-identical** results to the same
/// deltas committed one relation at a time, and both agree with a full
/// recompute — on all four datasets, across the ablation ladder. The
/// one-walk side publishes exactly one generation per transaction; the
/// sequential side publishes one per delta.
#[test]
fn multi_relation_transactions_match_sequential_and_recompute() {
    use lmfao::datagen::{transaction_stream, txn_relations};

    let dynamics = DynamicRegistry::new();
    for ds in datagen::all_datasets(Scale::small()) {
        let batch = workload(&ds);
        let relations = txn_relations(&ds.name);
        let txns = transaction_stream(&ds, &relations, &UpdateMix::balanced(6).seed(3));
        assert!(
            txns.iter().any(|t| t.num_relations() >= 2),
            "{}: the stream must produce multi-relation transactions",
            ds.name
        );
        for (name, cfg) in EngineConfig::ablation_ladder(EngineConfig::env_threads(2)) {
            let engine = Engine::new(ds.db.clone(), ds.tree.clone(), cfg);
            let mut txn_side = engine
                .prepare(&batch)
                .unwrap()
                .into_maintained(&dynamics)
                .unwrap();
            let mut seq_side = engine
                .prepare(&batch)
                .unwrap()
                .into_maintained(&dynamics)
                .unwrap();
            let mut reference =
                RecomputeReference::new(ds.db.clone(), ds.tree.clone(), cfg, batch.clone());
            let mut committed = 0u64;
            let mut deltas_applied = 0u64;
            for (step, txn) in txns.iter().enumerate() {
                txn_side.commit(txn.clone(), &dynamics).unwrap();
                committed += 1;
                for delta in txn.deltas() {
                    seq_side.commit(delta, &dynamics).unwrap();
                    reference.apply(delta).unwrap();
                    deltas_applied += 1;
                }
                let context = format!("{}/{name} txn {step}", ds.name);
                // One walk vs several: counts agree to the bit, continuous
                // sums within the documented reassociation slack (the
                // bit-strict variant lives in `lmfao_core::maintain`'s unit
                // tests over integer-valued data).
                assert_agree(
                    &txn_side.results().unwrap(),
                    &seq_side.results().unwrap(),
                    false,
                    &context,
                );
                assert_agree(
                    &txn_side.results().unwrap(),
                    &reference.recompute().unwrap(),
                    false,
                    &context,
                );
            }
            // One generation per transaction vs one per delta.
            assert_eq!(
                txn_side.snapshot().generation(),
                committed,
                "{}/{name}",
                ds.name
            );
            assert_eq!(
                seq_side.snapshot().generation(),
                deltas_applied,
                "{}/{name}",
                ds.name
            );
            assert!(deltas_applied > committed, "{}/{name}", ds.name);
        }
    }
}

/// The morsel-scheduler determinism property: across all four datasets and
/// the whole ablation ladder, executing with 2, 4 or 8 worker threads is
/// **bit-identical** to executing with one. The scheduler merges per-morsel
/// partials in morsel-index order and each small-scale scan fits one morsel,
/// so no thread count may perturb a single bit — group-completion order is
/// the only thing that varies.
#[test]
fn morsel_parallel_execution_is_bit_identical_to_sequential() {
    for ds in datagen::all_datasets(Scale::small()) {
        let batch = workload(&ds);
        for (name, cfg) in EngineConfig::ablation_ladder(1) {
            let sequential = Engine::new(ds.db.clone(), ds.tree.clone(), cfg.threads(1))
                .execute(&batch)
                .unwrap();
            for threads in [2, 4, 8] {
                let parallel = Engine::new(ds.db.clone(), ds.tree.clone(), cfg.threads(threads))
                    .execute(&batch)
                    .unwrap();
                assert_agree(
                    &parallel,
                    &sequential,
                    true,
                    &format!("{}/{name} threads {threads}", ds.name),
                );
            }
        }
    }
}

/// The same property where scans genuinely split: a fact table larger than
/// one morsel (65,536 rows) forces the scheduler to claim several morsels
/// per scan and fold their partials in index order. Measures are
/// integer-valued, so every sum is exact and parallel results must equal
/// `threads = 1` bitwise — for fresh execution and after a dimension-side
/// commit whose propagation rescans the big relation morsel by morsel.
#[test]
fn multi_morsel_scans_are_bit_identical_including_under_commit() {
    use lmfao::data::{AttrType, DatabaseSchema, RelationSchema, TableDelta, Value};
    use lmfao::jointree::{build_join_tree, Hypergraph};

    const ROWS: i64 = 150_000; // ≈ 2.3 morsels per scan of F

    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "F",
        &[
            ("k", AttrType::Int),
            ("m", AttrType::Double),
            ("c", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs("D", &[("k", AttrType::Int), ("w", AttrType::Double)]);
    let ids: Vec<AttrId> = ["k", "m", "c", "w"]
        .iter()
        .map(|n| schema.attr_id(n).unwrap())
        .collect();
    let f = Relation::from_rows(
        RelationSchema::new("F", vec![ids[0], ids[1], ids[2]]),
        (0..ROWS)
            .map(|i| {
                vec![
                    Value::Int(i % 8),
                    Value::Double((i % 23) as f64),
                    Value::Int(i % 3),
                ]
            })
            .collect(),
    )
    .unwrap();
    let d = Relation::from_rows(
        RelationSchema::new("D", vec![ids[0], ids[3]]),
        (0..8)
            .map(|i| vec![Value::Int(i), Value::Double((7 * (i + 1)) as f64)])
            .collect(),
    )
    .unwrap();
    let db = Database::new(schema.clone(), vec![f, d]).unwrap();
    let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();

    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("mw", vec![], vec![Aggregate::sum_product(ids[1], ids[3])]);
    batch.push("per_c", vec![ids[2]], vec![Aggregate::sum(ids[1])]);

    // A dimension correction: its propagation rescans all of F (with the
    // delta overlay and slot masks) through the morsel scheduler.
    let mut delta = TableDelta::for_relation(db.relation("D").unwrap());
    delta.delete(&[Value::Int(3), Value::Double(28.0)]).unwrap();
    delta.insert(&[Value::Int(3), Value::Double(35.0)]).unwrap();

    let dynamics = DynamicRegistry::new();
    let run = |threads: usize| {
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::full(threads));
        let fresh = engine.execute(&batch).unwrap();
        let mut maintained = engine
            .prepare(&batch)
            .unwrap()
            .into_maintained(&dynamics)
            .unwrap();
        maintained.commit(&delta, &dynamics).unwrap();
        (fresh, maintained.results().unwrap())
    };

    let (fresh_1, after_1) = run(1);
    for threads in [2, 4, 8] {
        let (fresh, after) = run(threads);
        assert_agree(&fresh, &fresh_1, true, &format!("fresh, threads {threads}"));
        assert_agree(
            &after,
            &after_1,
            true,
            &format!("after commit, threads {threads}"),
        );
    }
}

/// A fully-cancelling buffered stream flushes to nothing: no transaction is
/// produced, no commit happens, and no generation is ever published.
#[test]
fn fully_cancelling_buffer_publishes_zero_generations() {
    use std::time::Duration;

    let dynamics = DynamicRegistry::new();
    let ds = datagen::favorita::generate(Scale::small());
    let batch = workload(&ds);
    let engine = Engine::new(ds.db.clone(), ds.tree.clone(), EngineConfig::default());
    let mut live = engine
        .prepare(&batch)
        .unwrap()
        .into_maintained(&dynamics)
        .unwrap();
    let before = live.results().unwrap();

    // Every insert is followed by a delete of the same row, across two
    // relations; coalescing cancels the whole changeset.
    let mut buffer = DeltaBuffer::new(1024, Duration::from_secs(3600));
    for relation in ["Sales", "Transactions"] {
        let rel = live.database().relation(relation).unwrap();
        let rows: Vec<Vec<Value>> = rel.rows().take(4).map(|r| r.to_vec()).collect();
        let mut ins = TableDelta::for_relation(rel);
        let mut del = TableDelta::for_relation(rel);
        for row in &rows {
            ins.insert(row).unwrap();
            del.delete(row).unwrap();
        }
        buffer.push(ins);
        buffer.push(del);
    }
    assert!(!buffer.is_empty());
    let flushed = buffer.flush();
    assert!(flushed.is_none(), "cancelling stream must flush to nothing");
    if let Some(txn) = flushed {
        live.commit(txn, &dynamics).unwrap();
    }
    assert_eq!(live.snapshot().generation(), 0, "no generation published");
    assert_agree(&live.results().unwrap(), &before, true, "unchanged state");
}
