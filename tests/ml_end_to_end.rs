//! End-to-end tests of the analytics applications (Section 2 / Tables 4–5):
//! training happens over aggregate batches only, and the learned models are
//! validated against the materialized join.

use lmfao::baseline::{self, MaterializedEngine};
use lmfao::ml::{self, assemble_cube};
use lmfao::prelude::*;

/// A small star-schema database where the label is an exact linear function
/// of features living in different relations:
///   y = 5 + 2·x_fact + 3·x_dim
fn linear_database() -> (Dataset, AttrId, Vec<AttrId>) {
    use lmfao_data::{AttrType, Database, DatabaseSchema, Relation};
    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "Fact",
        &[
            ("key", AttrType::Int),
            ("x_fact", AttrType::Double),
            ("y", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Dim",
        &[("key", AttrType::Int), ("x_dim", AttrType::Double)],
    );
    let _key = schema.attr_id("key").unwrap();
    let x_fact = schema.attr_id("x_fact").unwrap();
    let y = schema.attr_id("y").unwrap();
    let x_dim = schema.attr_id("x_dim").unwrap();

    let n_keys = 40i64;
    let dim_rows: Vec<Vec<Value>> = (0..n_keys)
        .map(|k| vec![Value::Int(k), Value::Double((k % 7) as f64)])
        .collect();
    let mut fact_rows = Vec::new();
    for i in 0..400i64 {
        let k = i % n_keys;
        let xf = (i % 13) as f64;
        let xd = (k % 7) as f64;
        fact_rows.push(vec![
            Value::Int(k),
            Value::Double(xf),
            Value::Double(5.0 + 2.0 * xf + 3.0 * xd),
        ]);
    }
    let fact = Relation::from_rows(schema.relation("Fact").unwrap().clone(), fact_rows).unwrap();
    let dim = Relation::from_rows(schema.relation("Dim").unwrap().clone(), dim_rows).unwrap();
    let db = Database::new(schema.clone(), vec![fact, dim]).unwrap();
    let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
    (
        Dataset {
            name: "Linear".into(),
            db,
            tree,
        },
        y,
        vec![x_fact, x_dim],
    )
}

#[test]
fn linear_regression_recovers_cross_relation_coefficients() {
    let (dataset, label, features) = linear_database();
    let mut spec_features = features.clone();
    spec_features.push(label);
    let spec = CovarSpec::continuous_only(spec_features);
    let cb = covar_batch(&spec);
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let result = engine.execute(&cb.batch).unwrap();
    let covar = ml::assemble_covar_matrix(&cb, &result);
    assert_eq!(covar.dim(), 4); // intercept + 2 features + label

    let model = train_linear_regression(
        &covar,
        &LinRegConfig {
            l2: 0.0,
            max_iterations: 50_000,
            tolerance: 1e-12,
        },
    );
    assert!(
        (model.theta[0] - 5.0).abs() < 0.1,
        "intercept {:?}",
        model.theta
    );
    assert!(
        (model.theta[1] - 2.0).abs() < 0.05,
        "x_fact {:?}",
        model.theta
    );
    assert!(
        (model.theta[2] - 3.0).abs() < 0.05,
        "x_dim {:?}",
        model.theta
    );

    // RMSE over the materialized join is essentially zero, and the
    // aggregate-only RMSE (θ'ᵀCθ' over a covar batch, no materialization)
    // agrees with it.
    let join = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let materialized_rmse = model.rmse(join.join(), label);
    assert!(materialized_rmse < 0.2);
    let aggregate_rmse = ml::evaluate::linreg_rmse_via_aggregates(&engine, &model, label).unwrap();
    assert!(
        (aggregate_rmse - materialized_rmse).abs() < 1e-6 + 1e-6 * materialized_rmse,
        "aggregate RMSE {aggregate_rmse} vs materialized {materialized_rmse}"
    );
}

#[test]
fn lmfao_covar_matrix_equals_baseline_statistics() {
    let (dataset, label, features) = linear_database();
    let mut spec_features = features.clone();
    spec_features.push(label);
    let spec = CovarSpec::continuous_only(spec_features.clone());
    let cb = covar_batch(&spec);
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let covar = ml::assemble_covar_matrix(&cb, &engine.execute(&cb.batch).unwrap());

    // Recompute the same statistics from the materialized join.
    let join = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let join_rel = join.join();
    let cols: Vec<usize> = spec_features
        .iter()
        .map(|a| join_rel.position(*a).unwrap())
        .collect();
    let n = join_rel.len();
    assert_eq!(covar.count, n as f64);
    for (j, &cj) in cols.iter().enumerate() {
        for (k, &ck) in cols.iter().enumerate() {
            let expected: f64 = (0..n)
                .map(|i| join_rel.value(i, cj).as_f64() * join_rel.value(i, ck).as_f64())
                .sum();
            let got = covar.matrix[j + 1][k + 1];
            assert!(
                (expected - got).abs() < 1e-6 * expected.abs().max(1.0),
                "C[{j}][{k}]: {got} vs {expected}"
            );
        }
    }
}

#[test]
fn regression_tree_beats_the_mean_predictor() {
    let (dataset, label, features) = linear_database();
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let config = TreeConfig {
        task: TreeTask::Regression,
        max_depth: 3,
        min_samples: 10,
        buckets: 10,
    };
    let tree = train_decision_tree(&engine, &features, label, &config).unwrap();
    assert!(tree.size() > 1, "the tree must find at least one split");

    let join = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let join_rel = join.join();
    let label_col = join_rel.position(label).unwrap();
    let mean: f64 = (0..join_rel.len())
        .map(|i| join_rel.value(i, label_col).as_f64())
        .sum::<f64>()
        / join_rel.len() as f64;
    let mean_rmse = ml::evaluate::rmse(join_rel, label, |_| mean);
    let tree_rmse = ml::evaluate::tree_rmse(&tree, join_rel, label);
    assert!(
        tree_rmse < 0.8 * mean_rmse,
        "tree {tree_rmse} must beat mean {mean_rmse}"
    );
}

/// Recursively asserts that two learned trees are bit-identical: same shape,
/// same split conditions, and leaf predictions/supports equal down to the
/// last bit of their f64 representation.
fn assert_trees_bit_identical(a: &ml::TreeNode, b: &ml::TreeNode) {
    match (a, b) {
        (
            ml::TreeNode::Leaf {
                prediction: pa,
                support: sa,
            },
            ml::TreeNode::Leaf {
                prediction: pb,
                support: sb,
            },
        ) => {
            assert_eq!(pa.to_bits(), pb.to_bits(), "leaf prediction {pa} vs {pb}");
            assert_eq!(sa.to_bits(), sb.to_bits(), "leaf support {sa} vs {sb}");
        }
        (
            ml::TreeNode::Split {
                condition: ca,
                left: la,
                right: ra,
            },
            ml::TreeNode::Split {
                condition: cb,
                left: lb,
                right: rb,
            },
        ) => {
            assert_eq!(ca, cb, "split conditions differ");
            assert_trees_bit_identical(la, lb);
            assert_trees_bit_identical(ra, rb);
        }
        _ => panic!("tree shapes differ: leaf vs split"),
    }
}

#[test]
fn prepared_regression_tree_is_bit_identical_to_replanning() {
    let (dataset, label, features) = linear_database();
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let config = TreeConfig {
        task: TreeTask::Regression,
        max_depth: 3,
        min_samples: 10,
        buckets: 10,
    };
    let prepared = train_decision_tree(&engine, &features, label, &config).unwrap();
    let replanned = ml::train_decision_tree_replanned(&engine, &features, label, &config).unwrap();
    assert_eq!(prepared.queries_issued, replanned.queries_issued);
    assert_trees_bit_identical(&prepared.root, &replanned.root);
    assert!(prepared.size() > 1, "the data has structure to split on");
}

#[test]
fn prepared_classification_tree_is_bit_identical_to_replanning() {
    let dataset = lmfao::datagen::tpcds::generate(Scale::new(1_500, 9));
    let label = dataset.attr("preferred");
    let features = vec![
        dataset.attr("birth_year"),
        dataset.attr("purchase_estimate"),
        dataset.attr("gender"),
        dataset.attr("marital"),
    ];
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let config = TreeConfig {
        task: TreeTask::Classification,
        max_depth: 2,
        min_samples: 50,
        buckets: 6,
    };
    let prepared = train_decision_tree(&engine, &features, label, &config).unwrap();
    let replanned = ml::train_decision_tree_replanned(&engine, &features, label, &config).unwrap();
    assert_eq!(prepared.queries_issued, replanned.queries_issued);
    assert_trees_bit_identical(&prepared.root, &replanned.root);
}

#[test]
fn classification_tree_on_tpcds_beats_majority_class() {
    let dataset = lmfao::datagen::tpcds::generate(Scale::new(3_000, 9));
    let label = dataset.attr("preferred");
    let features = vec![
        dataset.attr("birth_year"),
        dataset.attr("purchase_estimate"),
        dataset.attr("gender"),
        dataset.attr("marital"),
        dataset.attr("dep_count"),
    ];
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::full(2),
    );
    let config = TreeConfig {
        task: TreeTask::Classification,
        max_depth: 3,
        min_samples: 50,
        buckets: 8,
    };
    let tree = train_decision_tree(&engine, &features, label, &config).unwrap();
    assert!(tree.queries_issued > 0);

    let join = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let join_rel = join.join();
    let label_col = join_rel.position(label).unwrap();
    // Majority-class accuracy.
    let ones = (0..join_rel.len())
        .filter(|&i| join_rel.value(i, label_col).as_f64() > 0.5)
        .count() as f64;
    let majority = (ones / join_rel.len() as f64).max(1.0 - ones / join_rel.len() as f64);
    let acc = ml::evaluate::tree_accuracy(&tree, join_rel, label);
    assert!(
        acc >= majority - 1e-9,
        "tree accuracy {acc} must be at least the majority baseline {majority}"
    );
}

#[test]
fn chow_liu_tree_connects_functionally_dependent_attributes() {
    let dataset = lmfao::datagen::favorita::generate(Scale::new(2_000, 10));
    let names = ["store", "city", "state", "family", "htype"];
    let attrs: Vec<AttrId> = names.iter().map(|n| dataset.attr(n)).collect();
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let mi = mutual_info_matrix(&engine, &attrs).unwrap();
    let tree = chow_liu_tree(&mi);
    assert_eq!(tree.edges.len(), attrs.len() - 1);
    // The one-call learner wraps the same pipeline.
    let direct = learn_chow_liu(&engine, &attrs).unwrap();
    assert_eq!(direct.edges, tree.edges);
    // store→city and city→state are functional dependencies in the generator,
    // so their MI is maximal among pairs involving them; the spanning tree
    // must include the city—state edge or reach state through city/store.
    let city = 1usize;
    let state = 2usize;
    assert!(
        mi.get(city, state) > mi.get(3, 4),
        "functionally dependent pair must have higher MI than unrelated pair"
    );
    assert!(!tree.neighbors(state).is_empty());
}

#[test]
fn data_cube_cells_are_consistent_across_cuboids() {
    let dataset = lmfao::datagen::favorita::generate(Scale::new(1_000, 11));
    let dims = vec![dataset.attr("family"), dataset.attr("city")];
    let measures = vec![dataset.attr("units")];
    let cube_batch = datacube_batch(&dims, &measures);
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let result = engine.execute(&cube_batch.batch).unwrap();
    let cube = assemble_cube(&cube_batch, &result);

    // Roll-up consistency: summing the (family, ALL) cells over family gives
    // the apex, both for the count and for the measure.
    let apex = cube.cell(&[None, None]).expect("apex exists").to_vec();
    let mut rolled = vec![0.0; apex.len()];
    for (key, values) in cube.cells.iter() {
        if key[0].is_some() && key[1].is_none() {
            for (r, v) in rolled.iter_mut().zip(values) {
                *r += v;
            }
        }
    }
    for (r, a) in rolled.iter().zip(&apex) {
        assert!(
            (r - a).abs() < 1e-6 * a.abs().max(1.0),
            "{rolled:?} vs {apex:?}"
        );
    }
}

#[test]
fn lmfao_and_dense_baseline_learn_comparable_linear_models() {
    let (dataset, label, features) = linear_database();
    // LMFAO path, via the one-call engine-driven trainer.
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::default(),
    );
    let lmfao_model =
        train_linear_regression_over(&engine, &features, label, &LinRegConfig::default()).unwrap();

    // Dense baseline path (materialize + one-hot + GD).
    let join = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let dense = baseline::export_dense(join.join(), dataset.db.schema(), &features, label);
    let theta = baseline::train_linear_regression_dense(&dense, 1e-3, 1e-3, 2_000);

    let lmfao_rmse = lmfao_model.rmse(join.join(), label);
    let baseline_rmse = baseline::rmse_linear(&theta, &dense);
    // Both should fit this noiseless linear data well; LMFAO must not be
    // dramatically worse than the dense pipeline.
    assert!(lmfao_rmse < 1.0, "lmfao rmse {lmfao_rmse}");
    assert!(baseline_rmse < 2.0, "baseline rmse {baseline_rmse}");
}
