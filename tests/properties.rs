//! Property-based tests: on randomly generated databases and query batches,
//! the LMFAO engine must agree with the materialized-join baseline, in every
//! configuration, and core data-structure invariants must hold.

use lmfao::baseline::MaterializedEngine;
use lmfao::prelude::*;
use lmfao_expr::DynamicRegistry;
use proptest::prelude::*;

/// Builds a three-relation chain database R(a,b,x) — S(b,c) — T(c,y) from
/// generated tuples.
fn chain_db(
    r_rows: &[(i64, i64, f64)],
    s_rows: &[(i64, i64)],
    t_rows: &[(i64, f64)],
) -> (Database, JoinTree) {
    use lmfao_data::{AttrType, DatabaseSchema};
    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "R",
        &[
            ("a", AttrType::Int),
            ("b", AttrType::Int),
            ("x", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("c", AttrType::Int)]);
    schema.add_relation_with_attrs("T", &[("c", AttrType::Int), ("y", AttrType::Double)]);
    let ids: Vec<AttrId> = ["a", "b", "x", "c", "y"]
        .iter()
        .map(|n| schema.attr_id(n).unwrap())
        .collect();
    let r = Relation::from_rows(
        RelationSchema::new("R", vec![ids[0], ids[1], ids[2]]),
        r_rows
            .iter()
            .map(|&(a, b, x)| vec![Value::Int(a), Value::Int(b), Value::Double(x)])
            .collect(),
    )
    .unwrap();
    let s = Relation::from_rows(
        RelationSchema::new("S", vec![ids[1], ids[3]]),
        s_rows
            .iter()
            .map(|&(b, c)| vec![Value::Int(b), Value::Int(c)])
            .collect(),
    )
    .unwrap();
    let t = Relation::from_rows(
        RelationSchema::new("T", vec![ids[3], ids[4]]),
        t_rows
            .iter()
            .map(|&(c, y)| vec![Value::Int(c), Value::Double(y)])
            .collect(),
    )
    .unwrap();
    let db = Database::new(schema.clone(), vec![r, s, t]).unwrap();
    let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
    (db, tree)
}

/// Generated tuples for the three chain relations R, S, T.
type ChainRows = (Vec<(i64, i64, f64)>, Vec<(i64, i64)>, Vec<(i64, f64)>);

fn tuple_strategy() -> impl Strategy<Value = ChainRows> {
    let r = prop::collection::vec((0..5i64, 0..4i64, -3.0..3.0f64), 0..25);
    let s = prop::collection::vec((0..4i64, 0..4i64), 0..15);
    let t = prop::collection::vec((0..4i64, -2.0..2.0f64), 0..10);
    (r, s, t)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Decodes one generated cell into a [`Value`]; the selector picks the
/// variant so columns receive arbitrary mixes (typed or demoted to `Mixed`).
fn cell_value((sel, i, d, c): (u8, i64, f64, u32)) -> Value {
    match sel % 4 {
        0 => Value::Int(i),
        1 => Value::Double(d),
        2 => Value::Cat(c),
        _ => Value::Null,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine agrees with the materialized baseline on scalar and
    /// group-by aggregates for arbitrary databases, in every configuration.
    #[test]
    fn engine_matches_baseline_on_random_databases(
        (r_rows, s_rows, t_rows) in tuple_strategy()
    ) {
        let (db, tree) = chain_db(&r_rows, &s_rows, &t_rows);
        let a = db.schema().attr_id("a").unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let y = db.schema().attr_id("y").unwrap();
        let c = db.schema().attr_id("c").unwrap();

        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sum_xy", vec![], vec![Aggregate::sum_product(x, y)]);
        batch.push("per_a", vec![a], vec![Aggregate::sum(y), Aggregate::count()]);
        batch.push("per_c", vec![c], vec![Aggregate::sum_square(x)]);

        let baseline = MaterializedEngine::materialize(&db, &tree);
        let expected = baseline.execute_batch(&batch, &DynamicRegistry::new());

        for config in [EngineConfig::default(), EngineConfig::unoptimized(), EngineConfig::full(2)] {
            let engine = Engine::new(db.clone(), tree.clone(), config);
            let result = engine.execute(&batch).unwrap();
            // Scalars.
            prop_assert!(close(result.queries[0].scalar()[0], expected[0].scalar(1)[0]));
            prop_assert!(close(result.queries[1].scalar()[0], expected[1].scalar(1)[0]));
            // Group-bys: every non-zero baseline group must match.
            for (qi, exp) in expected.iter().enumerate().skip(2) {
                for (key, vals) in exp.data.iter() {
                    let got = result.queries[qi].get(key);
                    if vals.iter().any(|v| v.abs() > 1e-9) {
                        let got = got.unwrap_or(&[]);
                        prop_assert_eq!(got.len(), vals.len());
                        for (g, w) in got.iter().zip(vals) {
                            prop_assert!(close(*g, *w), "{:?} vs {:?}", got, vals);
                        }
                    }
                }
            }
        }
    }

    /// `prepare().execute()` over a shared database equals a fresh
    /// `Engine::execute` for every configuration of the ablation ladder, on
    /// random chain databases, and repeated executions of one prepared batch
    /// are identical.
    #[test]
    fn prepared_execution_matches_fresh_engines_across_the_ladder(
        (r_rows, s_rows, t_rows) in tuple_strategy()
    ) {
        let (db, tree) = chain_db(&r_rows, &s_rows, &t_rows);
        let a = db.schema().attr_id("a").unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let y = db.schema().attr_id("y").unwrap();
        let c = db.schema().attr_id("c").unwrap();

        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sum_xy", vec![], vec![Aggregate::sum_product(x, y)]);
        batch.push("per_a", vec![a], vec![Aggregate::sum(y), Aggregate::count()]);
        batch.push("per_c", vec![c], vec![Aggregate::sum_square(x)]);

        let shared = SharedDatabase::prepare(db.clone(), &tree);
        let dynamics = DynamicRegistry::new();
        for (name, config) in EngineConfig::ablation_ladder(2) {
            let prepared = Engine::with_shared(shared.clone(), tree.clone(), config)
                .prepare(&batch).unwrap();
            let via_prepared = prepared.execute(&dynamics).unwrap();
            let fresh = Engine::new(db.clone(), tree.clone(), config).execute(&batch).unwrap();
            for (p, f) in via_prepared.queries.iter().zip(&fresh.queries) {
                prop_assert_eq!(p.len(), f.len(), "{}: group counts differ", name);
                for (key, vals) in f.iter() {
                    let got = p.get(key);
                    prop_assert!(got.is_some(), "{}: missing group {:?}", name, key);
                    prop_assert_eq!(got.unwrap(), vals.as_slice(), "{}: {:?}", name, key);
                }
            }
            // Re-executing the same prepared batch is deterministic.
            let again = prepared.execute(&dynamics).unwrap();
            for (p, q) in via_prepared.queries.iter().zip(&again.queries) {
                prop_assert_eq!(&p.data, &q.data);
            }
        }
    }

    /// The count query equals the size of the materialized join, and the
    /// engine never reports more groups than distinct keys in the join.
    #[test]
    fn count_equals_join_size(
        (r_rows, s_rows, t_rows) in tuple_strategy()
    ) {
        let (db, tree) = chain_db(&r_rows, &s_rows, &t_rows);
        let a = db.schema().attr_id("a").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("per_a", vec![a], vec![Aggregate::count()]);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let result = engine.execute(&batch).unwrap();
        let join = MaterializedEngine::materialize(&db, &tree);
        prop_assert_eq!(result.queries[0].scalar()[0], join.join().len() as f64);
        let a_col = join.join().position(a);
        let distinct = a_col.map(|col| join.join().distinct_count(col)).unwrap_or(0);
        prop_assert_eq!(result.queries[1].len(), distinct);
    }

    /// Relation sorting is a permutation: length, multiset of rows and
    /// min/max per column are preserved.
    #[test]
    fn sorting_preserves_rows(rows in prop::collection::vec((0..10i64, 0..10i64), 0..50)) {
        let schema = RelationSchema::new("R", vec![AttrId(0), AttrId(1)]);
        let mut rel = Relation::from_rows(
            schema,
            rows.iter().map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]).collect(),
        )
        .unwrap();
        let before_len = rel.len();
        let mut before: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
        rel.sort_by_positions(&[0, 1]);
        prop_assert_eq!(rel.len(), before_len);
        let mut after: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after);
        // And the relation is indeed sorted by column 0.
        for i in 1..rel.len() {
            prop_assert!(rel.value(i - 1, 0) <= rel.value(i, 0));
        }
    }

    /// The columnar storage round-trips `from_rows -> rows()` exactly: every
    /// cell — including nulls, categorical codes and doubles compared by bit
    /// pattern — comes back identical, whatever mix of variants a column
    /// receives (typed columns for homogeneous data, the `Mixed` fallback
    /// otherwise).
    #[test]
    fn columnar_round_trip_is_exact(
        cells in prop::collection::vec((0u8..4, -100i64..100, -5.0..5.0f64, 0u32..50), 0..120)
    ) {
        let rows: Vec<Vec<Value>> = cells
            .chunks(3)
            .filter(|ch| ch.len() == 3)
            .map(|ch| ch.iter().map(|&c| cell_value(c)).collect())
            .collect();
        let rel = Relation::from_rows(
            RelationSchema::new("R", vec![AttrId(0), AttrId(1), AttrId(2)]),
            rows.clone(),
        )
        .unwrap();
        prop_assert_eq!(rel.len(), rows.len());
        let back: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
        // `Value` equality is bit-exact for doubles (to_bits), so this pins
        // the round trip down to the bit pattern.
        prop_assert_eq!(back, rows);
    }

    /// Rebuilding every relation through the row adapter (the row-oriented
    /// construction path) and re-running the engine yields **bit-identical**
    /// results across the full ablation ladder: columnar storage, permutation
    /// sorting and the typed fast paths change no result bit relative to
    /// row-by-row construction semantics.
    #[test]
    fn ladder_results_are_bit_identical_after_storage_round_trip(
        (r_rows, s_rows, t_rows) in tuple_strategy()
    ) {
        let (db, tree) = chain_db(&r_rows, &s_rows, &t_rows);
        let a = db.schema().attr_id("a").unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let y = db.schema().attr_id("y").unwrap();
        let c = db.schema().attr_id("c").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sum_xy", vec![], vec![Aggregate::sum_product(x, y)]);
        batch.push("per_a", vec![a], vec![Aggregate::sum(y), Aggregate::count()]);
        batch.push("per_c", vec![c], vec![Aggregate::sum_square(x)]);

        let rebuilt: Vec<Relation> = db
            .relations()
            .iter()
            .map(|r| {
                Relation::from_rows(
                    r.schema().clone(),
                    r.rows().map(|row| row.to_vec()).collect(),
                )
                .unwrap()
            })
            .collect();
        let db2 = lmfao_data::Database::new(db.schema().clone(), rebuilt).unwrap();

        for (name, config) in EngineConfig::ablation_ladder(2) {
            let res1 = Engine::new(db.clone(), tree.clone(), config).execute(&batch).unwrap();
            let res2 = Engine::new(db2.clone(), tree.clone(), config).execute(&batch).unwrap();
            for (q1, q2) in res1.queries.iter().zip(&res2.queries) {
                prop_assert_eq!(q1.len(), q2.len(), "{}: group counts differ", name);
                for (key, vals) in q1.iter() {
                    let other = q2.get(key);
                    prop_assert!(other.is_some(), "{}: missing group {:?}", name, key);
                    let bits1: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
                    let bits2: Vec<u64> =
                        other.unwrap().iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(bits1, bits2, "{}: {:?} differs bitwise", name, key);
                }
            }
        }
    }

    /// Dictionary encoding round-trips arbitrary strings.
    #[test]
    fn dictionary_round_trips(words in prop::collection::vec("[a-z]{1,8}", 1..40)) {
        let mut dict = lmfao_data::Dictionary::new();
        let codes: Vec<u32> = words.iter().map(|w| dict.encode(w)).collect();
        for (w, c) in words.iter().zip(&codes) {
            prop_assert_eq!(dict.decode(*c), Some(w.as_str()));
            prop_assert_eq!(dict.encode(w), *c);
        }
        let distinct: std::collections::BTreeSet<&String> = words.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }
}
