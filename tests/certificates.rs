//! Execution certificates end to end: the untrusted engine emits them, the
//! independent `lmfao-certify` checker (which shares no execution code with
//! the engine) must accept every honestly produced certificate across all
//! four paper datasets and the whole optimization ablation ladder — and must
//! reject every tampered one with the right typed verdict.
//!
//! The round trip under test is the real trust boundary: certificate →
//! canonical JSON → parse → check. Equality after the round trip guarantees
//! the fingerprint chain is stable under serialization.

use lmfao::certify::{
    self, check_certificate, check_chain, parse_certificate, to_json, CertError, Certificate,
};
use lmfao::datagen::{self, fact_relation, update_stream, Scale, UpdateMix};
use lmfao::engine::EngineConfig;
use lmfao::prelude::*;

/// A representative batch per dataset: COUNT, a sum, a sum of squares, a
/// sum-product and a group-by (the shapes the paper's workloads are made of).
fn workload(ds: &Dataset) -> QueryBatch {
    let (measure, group) = spec(ds);
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("sum", vec![], vec![Aggregate::sum(measure)]);
    batch.push("sum_sq", vec![], vec![Aggregate::sum_square(measure)]);
    batch.push("per_cat", vec![group], vec![Aggregate::sum(measure)]);
    batch
}

/// (continuous measure, group-by attribute) per dataset.
fn spec(ds: &Dataset) -> (AttrId, AttrId) {
    match ds.name.as_str() {
        "Retailer" => (ds.attr("inventoryunits"), ds.attr("category")),
        "Favorita" => (ds.attr("units"), ds.attr("family")),
        "Yelp" => (ds.attr("stars"), ds.attr("bcity")),
        "TPC-DS" => (ds.attr("quantity"), ds.attr("icategory")),
        other => panic!("unknown dataset {other}"),
    }
}

fn engine_for(ds: &Dataset, config: EngineConfig) -> Engine {
    Engine::new(ds.db.clone(), ds.tree.clone(), config)
}

/// Every dataset × every rung of the ablation ladder: the emitted execute
/// certificate passes the checker, survives the canonical-JSON round trip
/// bit-identically, and still passes afterwards.
#[test]
fn execute_certificates_verify_across_datasets_and_ladder() {
    let dynamics = DynamicRegistry::new();
    for ds in datagen::all_datasets(Scale::small()) {
        let batch = workload(&ds);
        for (rung, config) in EngineConfig::ablation_ladder(2) {
            let prepared = engine_for(&ds, config).prepare(&batch).unwrap();
            let (result, cert) = prepared.execute_certified(&dynamics).unwrap();
            assert!(
                !result.queries.is_empty(),
                "{}/{rung}: empty result",
                ds.name
            );
            check_certificate(&cert)
                .unwrap_or_else(|e| panic!("{}/{rung}: checker rejected: {e}", ds.name));

            let json = to_json(&cert);
            let parsed = parse_certificate(&json)
                .unwrap_or_else(|e| panic!("{}/{rung}: parse failed: {e}", ds.name));
            assert_eq!(parsed, cert, "{}/{rung}: round trip not identity", ds.name);
            check_certificate(&parsed).unwrap();
            assert_eq!(
                certify::fingerprint(&parsed),
                certify::fingerprint(&cert),
                "{}/{rung}: fingerprint unstable under round trip",
                ds.name
            );
        }
    }
}

/// Collects the full certificate chain of a maintained batch over an update
/// stream: the generation-0 execute certificate plus one maintenance
/// certificate per applied delta.
fn chain_for(ds: &Dataset, applies: usize) -> Vec<Certificate> {
    let dynamics = DynamicRegistry::new();
    let batch = workload(ds);
    let mut live = engine_for(ds, EngineConfig::default())
        .prepare(&batch)
        .unwrap()
        .into_maintained(&dynamics)
        .unwrap();
    let mut chain: Vec<Certificate> = vec![(*live.certificate()).clone()];
    let stream = update_stream(
        ds,
        fact_relation(&ds.name),
        &UpdateMix::balanced(applies).seed(9),
    );
    for delta in &stream {
        live.commit(delta, &dynamics).unwrap();
        chain.push((*live.certificate()).clone());
    }
    chain
}

/// The maintenance chain of every dataset checks clean, before and after the
/// canonical-JSON round trip of every link.
#[test]
fn maintenance_chains_verify_across_datasets() {
    const APPLIES: usize = 6;
    for ds in datagen::all_datasets(Scale::small()) {
        let chain = chain_for(&ds, APPLIES);
        assert_eq!(chain.len(), APPLIES + 1, "{}", ds.name);
        let summary =
            check_chain(&chain).unwrap_or_else(|e| panic!("{}: chain rejected: {e}", ds.name));
        assert_eq!(summary.certificates, APPLIES as u64 + 1, "{}", ds.name);
        assert_eq!(summary.final_generation, APPLIES as u64, "{}", ds.name);

        let rehydrated: Vec<Certificate> = chain
            .iter()
            .map(|c| parse_certificate(&to_json(c)).unwrap())
            .collect();
        assert_eq!(check_chain(&rehydrated).unwrap(), summary, "{}", ds.name);
    }
}

/// A forged query total on a real engine-emitted certificate is rejected
/// with the precise verdict naming the disagreeing aggregate.
#[test]
fn tampered_query_total_is_rejected() {
    let ds = datagen::all_datasets(Scale::small()).swap_remove(1); // Favorita
    let prepared = engine_for(&ds, EngineConfig::default())
        .prepare(&workload(&ds))
        .unwrap();
    let (_, cert) = prepared.execute_certified(&DynamicRegistry::new()).unwrap();
    let mut forged = cert.clone();
    let Certificate::Execute(c) = &mut forged else {
        panic!("execute path must emit an execute certificate");
    };
    c.queries[1].totals[0] += 1;
    assert!(matches!(
        check_certificate(&forged),
        Err(CertError::QueryTotalMismatch { .. })
    ));

    // A forged published row count is a different, equally typed verdict.
    let mut forged = cert;
    let Certificate::Execute(c) = &mut forged else {
        unreachable!()
    };
    c.queries[0].rows += 1;
    assert!(matches!(
        check_certificate(&forged),
        Err(CertError::QueryRowMismatch { .. })
    ));
}

/// Forging maintenance accounting — published totals that the signed net
/// cannot explain — is rejected, as is breaking the hash chain.
#[test]
fn tampered_maintenance_chain_is_rejected() {
    let ds = datagen::all_datasets(Scale::small()).swap_remove(0); // Retailer
    let chain = chain_for(&ds, 3);

    // Tamper the published after-totals of one view in the last link.
    let mut forged = chain.clone();
    let Certificate::Maintenance(m) = forged.last_mut().unwrap() else {
        panic!("applies emit maintenance certificates");
    };
    m.views[0].totals_after[0] += 1;
    assert!(matches!(
        check_certificate(forged.last().unwrap()),
        Err(CertError::DeltaAccountingMismatch { .. })
    ));

    // Break the hash link instead: each certificate is internally consistent,
    // only the chain check can see the forgery.
    let mut forged = chain.clone();
    let Certificate::Maintenance(m) = &mut forged[2] else {
        panic!("applies emit maintenance certificates");
    };
    m.parent_hash ^= 1;
    check_certificate(&forged[2]).unwrap();
    assert!(matches!(
        check_chain(&forged),
        Err(CertError::ParentHashMismatch { .. })
    ));

    // Dropping the execute root is rejected too: accounting needs an anchor.
    assert!(matches!(
        check_chain(chain.iter().skip(1)),
        Err(CertError::ChainRootNotExecute)
    ));
}

/// The wire format is a closed witness: unknown fields and future versions
/// are rejected at the trust boundary, not silently ignored.
#[test]
fn wire_format_is_closed() {
    let ds = datagen::all_datasets(Scale::small()).swap_remove(2); // Yelp
    let prepared = engine_for(&ds, EngineConfig::default())
        .prepare(&workload(&ds))
        .unwrap();
    let (_, cert) = prepared.execute_certified(&DynamicRegistry::new()).unwrap();
    let json = to_json(&cert);

    let smuggled = json.replacen("{\"kind\"", "{\"zzz\":0,\"kind\"", 1);
    assert!(matches!(
        parse_certificate(&smuggled),
        Err(CertError::Malformed(_))
    ));

    let future = json.replacen("\"version\":2", "\"version\":3", 1);
    assert_ne!(future, json, "the emitted version must be the spoken one");
    let parsed = parse_certificate(&future).unwrap();
    assert!(matches!(
        check_certificate(&parsed),
        Err(CertError::UnsupportedVersion { found: 3 })
    ));
}

/// One transaction, one certificate: a commit spanning several relations
/// emits a single maintenance certificate accounting for *every* changed
/// relation, and the chain including it verifies before and after the
/// canonical-JSON round trip.
#[test]
fn one_certificate_per_transaction_accounts_every_relation() {
    use lmfao::datagen::{transaction_stream, txn_relations};

    let dynamics = DynamicRegistry::new();
    let ds = datagen::all_datasets(Scale::small()).swap_remove(1); // Favorita
    let mut live = engine_for(&ds, EngineConfig::default())
        .prepare(&workload(&ds))
        .unwrap()
        .into_maintained(&dynamics)
        .unwrap();
    let mut chain: Vec<Certificate> = vec![(*live.certificate()).clone()];

    let relations = txn_relations(&ds.name);
    let txns = transaction_stream(&ds, &relations, &UpdateMix::balanced(4).seed(13));
    let mut multi = 0;
    for txn in &txns {
        let spanned = txn.num_relations();
        live.commit(txn.clone(), &dynamics).unwrap();
        let cert = (*live.certificate()).clone();
        let Certificate::Maintenance(m) = &cert else {
            panic!("commits emit maintenance certificates");
        };
        // Exactly one certificate for the whole transaction, with one
        // cardinality account per relation it touched.
        assert_eq!(m.relations.len(), spanned);
        assert_eq!(m.txn, live.snapshot().txn_id());
        if spanned >= 2 {
            multi += 1;
        }
        chain.push(cert);
    }
    assert!(multi > 0, "the stream must span multiple relations");
    assert_eq!(chain.len(), txns.len() + 1);

    let summary = check_chain(&chain).unwrap();
    assert_eq!(summary.final_generation, txns.len() as u64);
    let rehydrated: Vec<Certificate> = chain
        .iter()
        .map(|c| parse_certificate(&to_json(c)).unwrap())
        .collect();
    assert_eq!(check_chain(&rehydrated).unwrap(), summary);
}
