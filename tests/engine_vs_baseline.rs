//! Cross-engine integration tests: LMFAO (in every configuration) must agree
//! with the materialized-join baseline on every workload of the paper, over
//! all four synthetic datasets.

use lmfao::baseline::MaterializedEngine;
use lmfao::prelude::*;
use lmfao_expr::DynamicRegistry;

const EPS: f64 = 1e-6;

fn relative_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// Asserts that an LMFAO result and a baseline result agree on every group.
fn assert_agrees(
    name: &str,
    lmfao: &lmfao::engine::QueryResult,
    baseline: &lmfao::baseline::BaselineResult,
) {
    // Every baseline group with non-zero aggregates must exist in LMFAO with
    // the same values; LMFAO may omit all-zero groups.
    for (key, values) in baseline.data.iter() {
        let got = lmfao.get(key);
        let all_zero = values.iter().all(|v| v.abs() < EPS);
        match got {
            Some(found) => {
                for (g, w) in found.iter().zip(values) {
                    assert!(
                        relative_eq(*g, *w),
                        "{name}: key {key:?} expected {values:?} got {found:?}"
                    );
                }
            }
            None => assert!(
                all_zero,
                "{name}: missing group {key:?} with non-zero aggregates {values:?}"
            ),
        }
    }
    // And LMFAO must not invent groups.
    for (key, values) in lmfao.iter() {
        if values.iter().any(|v| v.abs() > EPS) {
            assert!(
                baseline.data.contains_key(key),
                "{name}: spurious group {key:?}"
            );
        }
    }
}

fn check_batch(dataset: &Dataset, batch: &QueryBatch, config: EngineConfig) {
    let engine = Engine::new(dataset.db.clone(), dataset.tree.clone(), config);
    // Exercise the primary API: plan once, then execute.
    let prepared = engine.prepare(batch).unwrap();
    let result = prepared.execute(&DynamicRegistry::new()).unwrap();
    let baseline = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let expected = baseline.execute_batch(batch, &DynamicRegistry::new());
    for ((q, lm), bl) in batch.queries.iter().zip(&result.queries).zip(&expected) {
        assert_agrees(&format!("{}::{}", dataset.name, q.name), lm, bl);
    }
}

fn covar_style_batch(dataset: &Dataset, continuous: &[&str], categorical: &[&str]) -> QueryBatch {
    let spec = lmfao::ml::CovarSpec {
        continuous: continuous.iter().map(|n| dataset.attr(n)).collect(),
        categorical: categorical.iter().map(|n| dataset.attr(n)).collect(),
    };
    lmfao::ml::covar_batch(&spec).batch
}

#[test]
fn favorita_covar_matrix_matches_baseline() {
    let dataset = lmfao::datagen::favorita::generate(Scale::new(800, 1));
    let batch = covar_style_batch(&dataset, &["units", "txns", "price"], &["family", "city"]);
    for config in [EngineConfig::default(), EngineConfig::unoptimized()] {
        check_batch(&dataset, &batch, config);
    }
}

#[test]
fn retailer_covar_matrix_matches_baseline() {
    let dataset = lmfao::datagen::retailer::generate(Scale::new(800, 2));
    let batch = covar_style_batch(
        &dataset,
        &["inventoryunits", "avghhi", "maxtemp", "prices"],
        &["category"],
    );
    check_batch(&dataset, &batch, EngineConfig::full(2));
}

#[test]
fn yelp_many_to_many_aggregates_match_baseline() {
    let dataset = lmfao::datagen::yelp::generate(Scale::new(600, 3));
    let stars = dataset.attr("stars");
    let category = dataset.attr("category");
    let fans = dataset.attr("fans");
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push(
        "stars_by_cat",
        vec![category],
        vec![Aggregate::sum(stars), Aggregate::count()],
    );
    batch.push(
        "fans_stars",
        vec![],
        vec![Aggregate::sum_product(fans, stars)],
    );
    check_batch(&dataset, &batch, EngineConfig::default());
}

#[test]
fn tpcds_mutual_information_counts_match_baseline() {
    let dataset = lmfao::datagen::tpcds::generate(Scale::new(700, 4));
    let attrs: Vec<AttrId> = ["icategory", "sstate", "gender", "preferred"]
        .iter()
        .map(|n| dataset.attr(n))
        .collect();
    let mi = mutual_info_batch(&attrs);
    check_batch(&dataset, &mi.batch, EngineConfig::default());
}

#[test]
fn favorita_data_cube_matches_baseline() {
    let dataset = lmfao::datagen::favorita::generate(Scale::new(600, 5));
    let dims = vec![
        dataset.attr("family"),
        dataset.attr("city"),
        dataset.attr("stype"),
    ];
    let measures = vec![dataset.attr("units"), dataset.attr("txns")];
    let cube = datacube_batch(&dims, &measures);
    check_batch(&dataset, &cube.batch, EngineConfig::default());
}

#[test]
fn regression_tree_node_batch_matches_baseline() {
    let dataset = lmfao::datagen::retailer::generate(Scale::new(600, 6));
    let label = dataset.attr("inventoryunits");
    let avghhi = dataset.attr("avghhi");
    let maxtemp = dataset.attr("maxtemp");
    // A regression-tree node: COUNT, SUM(y), SUM(y²) under two conditions.
    let alpha = Aggregate::conditions(&[
        (avghhi, CmpOp::Le, Value::Double(80_000.0)),
        (maxtemp, CmpOp::Gt, Value::Double(50.0)),
    ]);
    let mut batch = QueryBatch::new();
    batch.push(
        "rt_node",
        vec![],
        vec![
            Aggregate::product(alpha.clone()),
            Aggregate::product(alpha.clone().times(ScalarFunction::Identity(label))),
            Aggregate::product(alpha.times(ScalarFunction::Power {
                attr: label,
                exponent: 2,
            })),
        ],
    );
    check_batch(&dataset, &batch, EngineConfig::default());
}

#[test]
fn all_ablation_configurations_agree_on_favorita() {
    let dataset = lmfao::datagen::favorita::generate(Scale::new(500, 8));
    let units = dataset.attr("units");
    let family = dataset.attr("family");
    let price = dataset.attr("price");
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("per_family", vec![family], vec![Aggregate::sum(units)]);
    batch.push("up", vec![], vec![Aggregate::sum_product(units, price)]);

    // One sorted database backs every configuration of the ladder: engines
    // share it through the Arc-backed handle instead of cloning wholesale.
    let shared = SharedDatabase::prepare(dataset.db.clone(), &dataset.tree);
    let reference = Engine::with_shared(
        shared.clone(),
        dataset.tree.clone(),
        EngineConfig::unoptimized(),
    )
    .execute(&batch)
    .unwrap();
    assert!(reference.query("count").scalar()[0] > 0.0);
    for (name, config) in EngineConfig::ablation_ladder(4).into_iter().skip(1) {
        let result = Engine::with_shared(shared.clone(), dataset.tree.clone(), config)
            .execute(&batch)
            .unwrap();
        for (r, e) in result.queries.iter().zip(&reference.queries) {
            assert_eq!(r.len(), e.len(), "{name}");
            for (key, vals) in e.iter() {
                let got = r
                    .get(key)
                    .unwrap_or_else(|| panic!("{name}: missing {key:?}"));
                for (g, w) in got.iter().zip(vals) {
                    assert!(relative_eq(*g, *w), "{name}: {key:?}");
                }
            }
        }
    }
}
