//! Snapshot isolation, checked from the outside.
//!
//! The positive half runs the `lmfao-bench` isolation harness for real —
//! concurrent reader threads against one transactional writer draining a
//! multi-relation transaction stream — and requires the black-box checker
//! to find **zero** violations in the merged history. The negative half
//! proves the checker has teeth: it simulates a *torn publication* (one
//! logical transaction published as two generations, readers observing the
//! half-applied middle) and requires the checker to flag both the torn read
//! and the broken generation bookkeeping.

use lmfao::datagen::{self, transaction_stream, txn_relations, Scale, UpdateMix};
use lmfao::engine::EngineConfig;
use lmfao::prelude::*;
use lmfao_bench::iso::{run_iso, IsoConfig};

/// The stress acceptance: readers × writer × multi-relation transactions,
/// zero violations over every recorded read of every reader.
#[test]
fn concurrent_stress_run_has_zero_violations() {
    let ds = datagen::favorita::generate(Scale::small());
    let units = ds.attr("units");
    let family = ds.attr("family");
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("units", vec![], vec![Aggregate::sum(units)]);
    batch.push("per_family", vec![family], vec![Aggregate::sum(units)]);

    let config = IsoConfig {
        readers: 4,
        duration_secs: 1.5,
        commits_per_sec: 400.0,
        operations: 2048,
        seed: 21,
    };
    let report = run_iso(&ds, &batch, EngineConfig::default(), &config).unwrap();
    assert!(
        report.ok(),
        "violations: {:?}, writer error: {:?}",
        report.violations,
        report.writer_error
    );
    assert!(report.commits > 1, "the writer must commit past genesis");
    assert!(
        report.multi_relation_commits > 0,
        "the stream must span multiple relations"
    );
    assert!(report.recorded_reads > 0, "readers must record history");
}

/// The negative control: publish one logical two-relation transaction as
/// TWO generations (exactly the per-relation write path this PR replaces),
/// record it as ONE commit, and let a reader observe the half-applied
/// middle state. A checker that stays silent here checks nothing.
#[test]
fn torn_publication_is_detected() {
    let ds = datagen::favorita::generate(Scale::small());
    let units = ds.attr("units");
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("units", vec![], vec![Aggregate::sum(units)]);

    let dynamics = DynamicRegistry::new();
    let mut writer = Engine::new(ds.db.clone(), ds.tree.clone(), EngineConfig::default())
        .prepare(&batch)
        .unwrap()
        .into_serving(&dynamics)
        .unwrap();
    let handle = writer.handle();

    let mut history = History::new();
    let genesis = handle.load();
    history.add_commit(CommitEvent {
        txn_id: genesis.txn_id(),
        generation: genesis.generation(),
        digest: snapshot_digest(&genesis),
    });
    history.add_read(ReadEvent {
        reader: 0,
        seq: 0,
        generation: genesis.generation(),
        txn_id: genesis.txn_id(),
        digest: snapshot_digest(&genesis),
    });

    // One logical transaction over two relations…
    let relations = txn_relations(&ds.name);
    let txn = transaction_stream(&ds, &relations, &UpdateMix::balanced(4).seed(17))
        .into_iter()
        .find(|t| t.num_relations() >= 2)
        .expect("the stream must produce a multi-relation transaction");

    // …published the BROKEN way: one generation per relation. Commit a
    // dimension delta first and keep the fact-table delta (which always
    // moves COUNT) for later, so the half-applied state the reader pins is
    // guaranteed to differ from the final one.
    let mut deltas: Vec<_> = txn.deltas().to_vec();
    deltas.sort_by_key(|d| d.relation() == "Sales");
    let mut deltas = deltas.into_iter();
    writer.commit(deltas.next().unwrap(), &dynamics).unwrap();
    let torn = handle.load();
    history.add_read(ReadEvent {
        reader: 0,
        seq: 1,
        generation: torn.generation(),
        txn_id: torn.txn_id(),
        digest: snapshot_digest(&torn),
    });
    for delta in deltas {
        writer.commit(delta, &dynamics).unwrap();
    }

    // The writer (dishonestly) records the whole thing as one atomic commit
    // at the generation the reader pinned.
    let last = writer.snapshot();
    history.add_commit(CommitEvent {
        txn_id: torn.txn_id(),
        generation: torn.generation(),
        digest: snapshot_digest(&last),
    });
    history.add_read(ReadEvent {
        reader: 0,
        seq: 2,
        generation: last.generation(),
        txn_id: last.txn_id(),
        digest: snapshot_digest(&last),
    });

    let violations = check_history(&history);
    // The middle state the reader pinned matches no committed digest.
    assert!(
        violations.iter().any(|v| matches!(
            v,
            IsoViolation::TornRead {
                reader: 0,
                seq: 1,
                ..
            }
        )),
        "torn publication must be flagged: {violations:?}"
    );
    // And the extra generations the split published have no commit events:
    // the bookkeeping axiom catches the same bug from the other side.
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, IsoViolation::FutureGeneration { .. })
                || matches!(v, IsoViolation::GenerationGap { .. })),
        "generation bookkeeping must flag the unrecorded publishes: {violations:?}"
    );
}
