//! Concurrent serving: readers pinning a published generation must never
//! block on — or observe any partial state of — a writer refresh.
//!
//! Two attacks on the epoch-publication protocol of `lmfao_core::snapshot`:
//!
//! * a **barrier-driven** test that pins generation G on several reader
//!   threads, lets the writer publish G+1 *while the pins are held*, and
//!   asserts the pinned snapshots still answer bit-identically to their
//!   pre-refresh answers (and that fresh loads see G+1);
//! * a **seeded stress** test (4 readers × 1 writer × 500 single-tuple
//!   updates) where readers continuously load snapshots and retain one pin
//!   per generation observed; afterwards every sampled generation is audited
//!   against `RecomputeReference::for_snapshot` — a fresh engine over that
//!   snapshot's own database copy — exactly for counts, within 1e-9 relative
//!   tolerance for float sums.

use lmfao::baseline::RecomputeReference;
use lmfao::datagen::{self, update_stream, Scale, UpdateMix};
use lmfao::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

/// Sales ⋈ Items toy database: 8 sales rows over 3 items.
fn toy() -> (Database, JoinTree, QueryBatch) {
    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "Sales",
        &[
            ("store", AttrType::Int),
            ("item", AttrType::Int),
            ("units", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Items",
        &[("item", AttrType::Int), ("price", AttrType::Double)],
    );
    let store = schema.attr_id("store").unwrap();
    let units = schema.attr_id("units").unwrap();
    let price = schema.attr_id("price").unwrap();
    let sales = Relation::from_rows(
        schema.relation("Sales").unwrap().clone(),
        (0..8)
            .map(|i| {
                vec![
                    Value::Int(i % 4),
                    Value::Int(i % 3),
                    Value::Double((i + 1) as f64),
                ]
            })
            .collect(),
    )
    .unwrap();
    let items = Relation::from_rows(
        schema.relation("Items").unwrap().clone(),
        (0..3)
            .map(|i| vec![Value::Int(i), Value::Double((10 * (i + 1)) as f64)])
            .collect(),
    )
    .unwrap();
    let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
    let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push(
        "revenue",
        vec![],
        vec![Aggregate::sum_product(units, price)],
    );
    batch.push("per_store", vec![store], vec![Aggregate::sum(units)]);
    (db, tree, batch)
}

/// Bit-exact equality of two batch results, query by query.
fn assert_identical(got: &BatchResult, want: &BatchResult, context: &str) {
    assert_eq!(got.queries.len(), want.queries.len(), "{context}");
    for (g, w) in got.queries.iter().zip(&want.queries) {
        assert_eq!(g.name, w.name, "{context}");
        assert_eq!(g.data, w.data, "{context}: query {}", g.name);
    }
}

/// Readers pin generation G across a refresh: the pinned snapshots must keep
/// answering exactly what they answered before the writer published G+1,
/// while fresh loads through the same handle observe the new generation.
#[test]
fn pinned_readers_are_unaffected_by_a_concurrent_publication() {
    const READERS: usize = 4;
    let (db, tree, batch) = toy();
    let dynamics = DynamicRegistry::new();
    let mut writer = Engine::new(db.clone(), tree, EngineConfig::default())
        .prepare(&batch)
        .unwrap()
        .into_serving(&dynamics)
        .unwrap();
    let handle = writer.handle();

    // One sync point before the refresh (everyone has pinned G and recorded
    // its answers) and one after it (G+1 is published).
    let pinned_barrier = Arc::new(Barrier::new(READERS + 1));
    let published_barrier = Arc::new(Barrier::new(READERS + 1));

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let handle = handle.clone();
            let pinned_barrier = Arc::clone(&pinned_barrier);
            let published_barrier = Arc::clone(&published_barrier);
            s.spawn(move || {
                let pinned = handle.load();
                assert_eq!(pinned.generation(), 0);
                let before = pinned.results().clone();
                pinned_barrier.wait();
                // ... the writer applies a delta and publishes G+1 here ...
                published_barrier.wait();
                // The pin is immutable: same bits as before the refresh.
                assert_identical(pinned.results(), &before, "pinned generation drifted");
                assert_eq!(pinned.generation(), 0);
                // A fresh load sees the new world.
                let fresh = handle.load();
                assert_eq!(fresh.generation(), 1);
                assert!(
                    fresh.results().query("count").scalar()[0]
                        > pinned.results().query("count").scalar()[0],
                    "the new generation must reflect the insert"
                );
            });
        }

        pinned_barrier.wait();
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .insert(&[Value::Int(1), Value::Int(1), Value::Double(9.0)])
            .unwrap();
        writer.commit(&delta, &dynamics).unwrap();
        assert_eq!(writer.generation(), 1);
        published_barrier.wait();
    });
}

/// Generation GC: with a history window of 3, generations the writer
/// retired are actually freed (their `Weak` handles die) — except a
/// generation a reader deliberately keeps pinned, which stays alive, still
/// answers its original results, and keeps exactly one strong reference
/// (the reader's own).
#[test]
fn gc_drops_unpinned_generations_but_never_a_pinned_reader() {
    const WINDOW: usize = 3;
    const COMMITS: usize = 10;
    const PIN_AT: u64 = 2;
    let (db, tree, batch) = toy();
    let dynamics = DynamicRegistry::new();
    let mut writer = Engine::new(db.clone(), tree, EngineConfig::default())
        .prepare(&batch)
        .unwrap()
        .into_serving(&dynamics)
        .unwrap();
    writer.set_history_window(WINDOW);
    assert_eq!(writer.history_window(), WINDOW);
    let handle = writer.handle();

    let mut weaks: Vec<(u64, std::sync::Weak<ViewSnapshot>)> = Vec::new();
    let mut pinned: Option<(Arc<ViewSnapshot>, BatchResult)> = None;
    for i in 0..COMMITS {
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .insert(&[
                Value::Int(i as i64 % 4),
                Value::Int(i as i64 % 3),
                Value::Double((i + 1) as f64),
            ])
            .unwrap();
        writer.commit(&delta, &dynamics).unwrap();
        let snap = handle.load();
        assert_eq!(snap.generation(), (i + 1) as u64);
        if snap.generation() == PIN_AT {
            pinned = Some((Arc::clone(&snap), snap.results().clone()));
        }
        weaks.push((snap.generation(), Arc::downgrade(&snap)));
    }

    // The writer-side history is bounded by the window...
    assert_eq!(writer.retained_generations(), WINDOW);
    let retained: Vec<u64> = writer
        .retained_snapshots()
        .map(|s| s.generation())
        .collect();
    assert_eq!(
        retained,
        ((COMMITS - WINDOW + 1) as u64..=COMMITS as u64).collect::<Vec<_>>(),
        "history keeps the newest generations, oldest first"
    );
    assert!(writer.retained_bytes() > 0);

    // ... and every generation outside it is genuinely freed — unless a
    // reader still pins it.
    let (pinned_snap, pinned_results) = pinned.expect("generation PIN_AT was published");
    for (generation, weak) in &weaks {
        let live = weak.upgrade().is_some();
        let retired = *generation <= (COMMITS - WINDOW) as u64;
        if *generation == PIN_AT {
            assert!(live, "the pinned generation must survive GC");
        } else if retired {
            assert!(
                !live,
                "generation {generation} is past the window and unpinned: it must be dropped"
            );
        } else {
            assert!(live, "generation {generation} is inside the window");
        }
    }
    // The pin holds the only strong reference left to its generation, and
    // the snapshot still answers exactly what it answered at publish time.
    assert_eq!(Arc::strong_count(&pinned_snap), 1);
    assert_identical(
        pinned_snap.results(),
        &pinned_results,
        "pinned generation drifted after GC",
    );

    // Shrinking the window retires immediately.
    writer.set_history_window(1);
    assert_eq!(writer.retained_generations(), 1);
    assert_eq!(
        writer.retained_snapshots().next().unwrap().generation(),
        COMMITS as u64
    );
}

/// 8 reader threads hammer `load()` during rapid publication; every observed
/// (generation, digest) pair goes into an isolation history which the
/// black-box snapshot-isolation checker must accept with zero violations —
/// the lock-free publication cell cannot tear, reorder, or resurrect
/// generations.
#[test]
fn stress_eight_readers_produce_a_clean_isolation_history() {
    const READERS: usize = 8;
    const UPDATES: usize = 300;
    let (db, tree, batch) = toy();
    let dynamics = DynamicRegistry::new();
    let mut writer = Engine::new(db.clone(), tree, EngineConfig::default())
        .prepare(&batch)
        .unwrap()
        .into_serving(&dynamics)
        .unwrap();
    writer.set_history_window(4);
    let handle = writer.handle();

    let genesis = writer.snapshot();
    let mut writer_history = History::new();
    writer_history.add_commit(CommitEvent {
        txn_id: genesis.txn_id(),
        generation: genesis.generation(),
        digest: snapshot_digest(&genesis),
    });
    drop(genesis);

    let stop = AtomicBool::new(false);
    let histories = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..READERS)
            .map(|reader_id| {
                let handle = handle.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut history = History::new();
                    let mut seq = 0u64;
                    let mut last_generation = 0u64;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let snap = handle.load();
                        assert!(
                            snap.generation() >= last_generation,
                            "reader {reader_id} went back in time"
                        );
                        if snap.generation() != last_generation || seq == 0 {
                            last_generation = snap.generation();
                            history.add_read(ReadEvent {
                                reader: reader_id,
                                seq,
                                generation: snap.generation(),
                                txn_id: snap.txn_id(),
                                digest: snapshot_digest(&snap),
                            });
                            seq += 1;
                        }
                        if done {
                            break;
                        }
                    }
                    history
                })
            })
            .collect();

        for i in 0..UPDATES {
            let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
            delta
                .insert(&[
                    Value::Int(i as i64 % 4),
                    Value::Int(i as i64 % 3),
                    Value::Double((i % 7 + 1) as f64),
                ])
                .unwrap();
            writer.commit(&delta, &dynamics).unwrap();
            let snap = writer.snapshot();
            writer_history.add_commit(CommitEvent {
                txn_id: snap.txn_id(),
                generation: snap.generation(),
                digest: snapshot_digest(&snap),
            });
        }
        assert_eq!(writer.generation(), UPDATES as u64);
        assert!(writer.retained_generations() <= 4);
        stop.store(true, Ordering::Relaxed);

        let mut histories = vec![writer_history];
        for h in reader_handles {
            histories.push(h.join().expect("reader panicked"));
        }
        histories
    });

    let mut merged = History::new();
    for h in histories {
        merged.merge(h);
    }
    let violations = check_history(&merged);
    assert!(
        violations.is_empty(),
        "snapshot-isolation violations under 8-reader load: {violations:?}"
    );
}

/// 4 readers × 1 writer × 500 updates: readers pin every generation they
/// observe; afterwards each sampled generation is recomputed from scratch at
/// its own database state and must agree (counts exactly, floats to 1e-9).
#[test]
fn stress_readers_always_match_a_recompute_at_their_pinned_generation() {
    const READERS: usize = 4;
    const UPDATES: usize = 500;
    let ds = datagen::favorita::generate(Scale::small());
    let units = ds.attr("units");
    let family = ds.attr("family");
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("units", vec![], vec![Aggregate::sum(units)]);
    batch.push("per_family", vec![family], vec![Aggregate::sum(units)]);

    let dynamics = DynamicRegistry::new();
    let mut writer = Engine::new(ds.db.clone(), ds.tree.clone(), EngineConfig::default())
        .prepare(&batch)
        .unwrap()
        .into_serving(&dynamics)
        .unwrap();
    let handle = writer.handle();
    let stream = update_stream(&ds, "Sales", &UpdateMix::balanced(UPDATES).seed(11));
    assert_eq!(stream.len(), UPDATES);

    let stop = AtomicBool::new(false);
    let pins = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..READERS)
            .map(|_| {
                let handle = handle.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut pins: BTreeMap<u64, Arc<ViewSnapshot>> = BTreeMap::new();
                    let mut last_generation = 0;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let snap = handle.load();
                        // Generations are published in order: a reader can
                        // never travel back in time.
                        assert!(
                            snap.generation() >= last_generation,
                            "generation went backwards: {} after {}",
                            snap.generation(),
                            last_generation
                        );
                        last_generation = snap.generation();
                        pins.entry(snap.generation()).or_insert(snap);
                        if done {
                            break;
                        }
                    }
                    pins
                })
            })
            .collect();

        for delta in &stream {
            writer.commit(delta, &dynamics).unwrap();
        }
        assert_eq!(writer.generation(), UPDATES as u64);
        stop.store(true, Ordering::Relaxed);

        let mut pins: BTreeMap<u64, Arc<ViewSnapshot>> = BTreeMap::new();
        for h in reader_handles {
            for (generation, snap) in h.join().expect("reader panicked") {
                // The same generation pinned by two readers is the same
                // published snapshot, not a lookalike.
                if let Some(other) = pins.get(&generation) {
                    assert!(
                        Arc::ptr_eq(other, &snap),
                        "two distinct snapshots claim generation {generation}"
                    );
                }
                pins.insert(generation, snap);
            }
        }
        pins
    });

    assert!(
        pins.len() > 2,
        "readers must observe several generations, saw {}",
        pins.len()
    );
    // Audit a bounded, evenly spread subset of the observed generations
    // (always the first and the last), recomputing each from the snapshot's
    // own pinned database state.
    let generations: Vec<u64> = pins.keys().copied().collect();
    let cap = 25.min(generations.len());
    let audit: Vec<u64> = (0..cap)
        .map(|i| generations[i * (generations.len() - 1) / (cap - 1).max(1)])
        .collect();
    for generation in audit {
        let snap = &pins[&generation];
        let truth = RecomputeReference::for_snapshot(snap, batch.clone())
            .recompute()
            .unwrap();
        for (got, want) in snap.results().queries.iter().zip(&truth.queries) {
            assert_eq!(got.name, want.name);
            let exact = got.name == "count";
            assert_eq!(
                got.data.len(),
                want.data.len(),
                "generation {generation}, query {}: group counts differ",
                got.name
            );
            for (key, wv) in &want.data {
                let gv = got
                    .data
                    .get(key)
                    .unwrap_or_else(|| panic!("generation {generation}: missing group {key:?}"));
                for (g, w) in gv.iter().zip(wv) {
                    if exact {
                        assert_eq!(g, w, "generation {generation}, query {}", got.name);
                    } else {
                        assert!(
                            (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                            "generation {generation}, query {}: {g} vs recomputed {w}",
                            got.name
                        );
                    }
                }
            }
        }
    }
}
